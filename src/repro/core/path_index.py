"""Derivation index: the all-path parse forest over the closed matrices.

The paper's §7 asks whether parse forests — the natural answer
representation for the *all-path* semantics — can be built by matrix
multiplication on graphs, as Okhotin [19] does for linear inputs.  The
semiring-generalized closure answers it directly: running
:func:`repro.core.closure.run_closure` over the **witness semiring**
(:class:`repro.core.semiring.WitnessSemiring`) annotates every cell
``(A, i, j)`` with its complete *midpoint index* — every terminal edge
``(i, x, j)`` with ``(A → x) ∈ P`` and every binary split
``(A → B C, r)`` with ``(i, r) ∈ R_B`` and ``(r, j) ∈ R_C``.  That is
the shared packed forest (an SPPF in parsing terms: nodes ``(A, i, j)``,
packed children per split), computed by the same strategy-pluggable
engine (``naive`` / ``delta`` / ``blocked``) as the relational answer.

:class:`AllPathIndex` wraps the annotated closure and supports:

* :meth:`splits` / :meth:`terminal_edges` — forest inspection;
* :meth:`count_paths` — the number of distinct derivation paths up to a
  length bound, by dynamic programming over the forest (no enumeration);
* :meth:`iter_paths` — lazy enumeration in order of increasing length;
* :meth:`shortest_path_length` — minimal witness length per pair (the
  quantity Hellings' single-path algorithm computes [12], and exactly
  the length-semiring annotation of
  :mod:`repro.core.single_path` — cross-checked in the tests).

Cycles in the graph make the forest cyclic (infinitely many paths); the
DP and the enumerator are bound-parameterized, which is the standard
annotated-grammar-free way to keep the all-path answer finite (§7).
Enumeration recurses on *exact* path lengths, which strictly decrease
at every split, so it terminates on cyclic forests by construction.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Hashable, Iterator

from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import LabeledGraph
from .relations import ContextFreeRelations
from .semiring import WITNESS_SEMIRING, solve_annotated
from .single_path import Path

#: One binary split of (A, i, j): (left nonterminal, right nonterminal, mid).
Split = tuple[Nonterminal, Nonterminal, int]


class AllPathIndex:
    """The implicit parse forest of one CFPQ evaluation.

    Build it with :meth:`build` (runs the witness-semiring closure and
    stores the midpoint index per forest node) or construct it directly
    from pre-computed relations, in which case splits are derived on
    demand from the row views — both paths yield the same forest.
    """

    def __init__(self, graph: LabeledGraph, grammar: CFG,
                 relations: ContextFreeRelations,
                 splits_index: dict[tuple[Nonterminal, int, int],
                                    tuple[Split, ...]] | None = None):
        self.graph = graph
        self.grammar = grammar
        self.relations = relations
        #: Midpoint index from the witness closure; None when built from
        #: bare relations (splits computed on demand instead).
        self._splits_index = splits_index
        # (i, j) -> labels of edges i -> j (for terminal derivations)
        self._edge_labels: dict[tuple[int, int], list[str]] = defaultdict(list)
        for i, label, j in graph.edges_by_id():
            self._edge_labels[(i, j)].append(label)
        # per non-terminal: i -> set of j (row view of R_A)
        self._rows: dict[Nonterminal, dict[int, set[int]]] = {}
        for nonterminal in grammar.nonterminals:
            rows: dict[int, set[int]] = defaultdict(set)
            for i, j in relations.pairs(nonterminal):
                rows[i].add(j)
            self._rows[nonterminal] = dict(rows)
        # Exact-length enumeration memo: (A, i, j, length) -> paths.
        self._length_memo: dict[tuple[Nonterminal, int, int, int],
                                tuple[Path, ...]] = {}
        # Shortest-witness cache shared across queries: one Dijkstra run
        # settles every node of the reachable sub-forest, and the
        # sub-forest is closed under children, so those minima are
        # globally correct and reusable.
        self._shortest_cache: dict[tuple[Nonterminal, int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: LabeledGraph, grammar: CFG,
              strategy: str | None = None,
              **strategy_options) -> "AllPathIndex":
        """Run the witness-semiring closure engine and wrap its forest.

        *strategy* selects the closure strategy (engine default when
        None; extra keyword options such as ``tile_size`` / ``scheduler``
        are forwarded); every strategy produces the identical forest.
        """
        cnf = ensure_cnf(grammar)
        result = solve_annotated(graph, cnf, WITNESS_SEMIRING,
                                 strategy=strategy, normalize=False,
                                 **strategy_options)
        return cls.from_witness_matrices(graph, cnf, result.matrices)

    @classmethod
    def from_witness_matrices(cls, graph: LabeledGraph, grammar: CFG,
                              matrices: dict) -> "AllPathIndex":
        """Wrap already-closed witness-semiring matrices (a finished
        :func:`solve_annotated` run, or matrices re-materialized from a
        snapshot payload) as a forest index."""
        pairs_by_nonterminal: dict[Nonterminal, set[tuple[int, int]]] = {}
        splits_index: dict[tuple[Nonterminal, int, int], tuple[Split, ...]] = {}
        for nonterminal, matrix in matrices.items():
            pairs_by_nonterminal[nonterminal] = set(matrix.nonzero_pairs())
            for i, j, witnesses in matrix.nonzero_cells():
                splits = sorted(
                    ((entry[1], entry[2], entry[3])
                     for entry in witnesses if entry[0] == "split"),
                    key=lambda split: (split[0].name, split[1].name, split[2]),
                )
                if splits:
                    splits_index[(nonterminal, i, j)] = tuple(splits)
        relations = ContextFreeRelations(graph, pairs_by_nonterminal)
        return cls(graph, grammar, relations, splits_index=splits_index)

    # ------------------------------------------------------------------
    # Forest structure
    # ------------------------------------------------------------------
    def terminal_edges(self, nonterminal: Nonterminal, i: int,
                       j: int) -> list[str]:
        """Labels x with ``(i, x, j) ∈ E`` and ``(A → x) ∈ P``."""
        return [
            label for label in self._edge_labels.get((i, j), ())
            if nonterminal in self.grammar.heads_for_terminal(Terminal(label))
        ]

    def splits(self, nonterminal: Nonterminal, i: int, j: int) -> list[Split]:
        """All binary decompositions of the forest node ``(A, i, j)``."""
        if self._splits_index is not None:
            return list(self._splits_index.get((nonterminal, i, j), ()))
        found: list[Split] = []
        for rule in self.grammar.productions_for(nonterminal):
            if not rule.is_binary_rule:
                continue
            left, right = rule.body  # type: ignore[misc]
            left_row = self._rows.get(left, {}).get(i, ())
            right_rows = self._rows.get(right, {})
            for r in left_row:
                if j in right_rows.get(r, ()):
                    found.append((left, right, r))  # type: ignore[arg-type]
        return found

    def node_exists(self, nonterminal: Nonterminal, i: int, j: int) -> bool:
        """``(i, j) ∈ R_A``."""
        return j in self._rows.get(nonterminal, {}).get(i, ())

    def _has_empty_path(self, nonterminal: Nonterminal, i: int,
                        j: int) -> bool:
        """True when the empty path ``iπi`` witnesses ``(i, j) ∈ R_A``
        (diagonal cell of an originally-nullable non-terminal)."""
        return i == j and nonterminal in self.grammar.nullable_diagonal

    # ------------------------------------------------------------------
    # Path counting (DP over the forest, length-stratified)
    # ------------------------------------------------------------------
    def count_paths(self, nonterminal: Nonterminal | str, source: Hashable,
                    target: Hashable, max_length: int) -> int:
        """Number of distinct derivation paths of length ≤ *max_length*.

        DP on ``counts[(A, i, j)][l]`` = number of derivations of exactly
        length l; splits convolve left and right counts.  Distinct
        *derivations* of the same edge sequence (ambiguous grammars)
        count once per edge sequence — we count paths, not parse trees,
        by deduplicating at the edge-sequence level per length via the
        enumerator when ambiguity is possible.  For unambiguous grammars
        the DP is exact and O(nodes · max_length²).
        """
        nonterminal = _as_nonterminal(nonterminal)
        i = self.graph.node_id(source)
        j = self.graph.node_id(target)
        if self._grammar_is_ambiguous():
            return sum(
                1 for _ in self.iter_paths(nonterminal, source, target,
                                           max_length)
            )
        empty = 1 if self._has_empty_path(nonterminal, i, j) else 0
        return empty + self._count_dp(nonterminal, i, j, max_length)

    def _grammar_is_ambiguous(self) -> bool:
        """Cheap over-approximation: a grammar with two rules sharing a
        head that can derive the same spans may be ambiguous; we only
        shortcut the DP for obviously-unambiguous single-rule heads."""
        by_head: dict[Nonterminal, int] = defaultdict(int)
        for rule in self.grammar.productions:
            by_head[rule.head] += 1
        return any(count > 1 for count in by_head.values())

    def _count_dp(self, nonterminal: Nonterminal, i: int, j: int,
                  max_length: int) -> int:
        memo: dict[tuple[Nonterminal, int, int], list[int]] = {}

        def counts(head: Nonterminal, a: int, b: int) -> list[int]:
            key = (head, a, b)
            if key in memo:
                return memo[key]
            vector = [0] * (max_length + 1)
            memo[key] = vector  # cycle guard: zeros while computing
            if 1 <= max_length and self.terminal_edges(head, a, b):
                vector[1] += len(self.terminal_edges(head, a, b))
            for left, right, r in self.splits(head, a, b):
                left_counts = counts(left, a, r)
                right_counts = counts(right, r, b)
                for l1 in range(1, max_length):
                    if not left_counts[l1]:
                        continue
                    for l2 in range(1, max_length - l1 + 1):
                        if right_counts[l2]:
                            vector[l1 + l2] += left_counts[l1] * right_counts[l2]
            return vector

        # Fixpoint for cyclic forests: iterate until counts stabilize.
        previous = None
        for _ in range(max_length + 1):
            memo.clear()
            total = sum(counts(nonterminal, i, j))
            if total == previous:
                break
            previous = total
        return previous or 0

    # ------------------------------------------------------------------
    # Lazy enumeration (shortest first)
    # ------------------------------------------------------------------
    def iter_paths(self, nonterminal: Nonterminal | str, source: Hashable,
                   target: Hashable, max_length: int) -> Iterator[Path]:
        """Enumerate all distinct paths of length ≤ *max_length*, in
        non-decreasing length order.

        Terminates on cyclic graphs: the recursion is on *exact* path
        lengths, which strictly decrease at every split.
        """
        nonterminal = _as_nonterminal(nonterminal)
        i = self.graph.node_id(source)
        j = self.graph.node_id(target)
        if not self.node_exists(nonterminal, i, j):
            return
        emitted: set[Path] = set()
        if self._has_empty_path(nonterminal, i, j):
            emitted.add(())
            yield ()
        for length in range(1, max_length + 1):
            for path in self._paths_of_length(nonterminal, i, j, length):
                if path not in emitted:
                    emitted.add(path)
                    yield path

    def _paths_of_length(self, head: Nonterminal, i: int, j: int,
                         length: int) -> tuple[Path, ...]:
        """All derivation paths of (head, i, j) of *exactly* `length`.

        Memoized; safe on cyclic forests because every split recurses on
        strictly smaller lengths (1 ≤ l1 < length), so (head, i, j,
        length) can never re-enter itself.
        """
        key = (head, i, j, length)
        cached = self._length_memo.get(key)
        if cached is not None:
            return cached
        found: list[Path] = []
        if length == 1:
            found = [((i, label, j),)
                     for label in self.terminal_edges(head, i, j)]
        else:
            seen: set[Path] = set()
            for left, right, r in self.splits(head, i, j):
                for l1 in range(1, length):
                    for left_path in self._paths_of_length(left, i, r, l1):
                        for right_path in self._paths_of_length(
                                right, r, j, length - l1):
                            combined = left_path + right_path
                            if combined not in seen:
                                seen.add(combined)
                                found.append(combined)
        result = tuple(found)
        self._length_memo[key] = result
        return result

    # ------------------------------------------------------------------
    # Shortest witnesses
    # ------------------------------------------------------------------
    def shortest_path_length(self, nonterminal: Nonterminal | str,
                             source: Hashable, target: Hashable) -> int | None:
        """The minimal witness length for ``(source, target) ∈ R_A`` —
        Dijkstra over forest nodes (every node's cost = min over its
        terminal edges and splits)."""
        nonterminal = _as_nonterminal(nonterminal)
        i = self.graph.node_id(source)
        j = self.graph.node_id(target)
        if not self.node_exists(nonterminal, i, j):
            return None
        if self._has_empty_path(nonterminal, i, j):
            return 0
        cached = self._shortest_cache.get((nonterminal, i, j))
        if cached is not None:
            return cached

        # Collect the reachable sub-forest, then run a priority-queue
        # relaxation from terminal leaves upward.
        best: dict[tuple[Nonterminal, int, int], int] = {}
        dependents: dict[tuple, list[tuple]] = defaultdict(list)
        nodes: set[tuple[Nonterminal, int, int]] = set()
        stack = [(nonterminal, i, j)]
        while stack:
            node = stack.pop()
            if node in nodes:
                continue
            nodes.add(node)
            head, a, b = node
            for left, right, r in self.splits(head, a, b):
                left_node = (left, a, r)
                right_node = (right, r, b)
                dependents[left_node].append((node, left_node, right_node))
                dependents[right_node].append((node, left_node, right_node))
                stack.extend((left_node, right_node))

        heap: list[tuple[int, tuple[str, int, int]]] = []
        for node in nodes:
            head, a, b = node
            if self.terminal_edges(head, a, b):
                best[node] = 1
                heapq.heappush(heap, (1, _node_key(node)))

        keyed = {_node_key(node): node for node in nodes}
        while heap:
            cost, key = heapq.heappop(heap)
            node = keyed[key]
            if cost > best.get(node, float("inf")):
                continue
            for parent, left_node, right_node in dependents[node]:
                left_cost = best.get(left_node)
                right_cost = best.get(right_node)
                if left_cost is None or right_cost is None:
                    continue
                candidate = left_cost + right_cost
                if candidate < best.get(parent, float("inf")):
                    best[parent] = candidate
                    heapq.heappush(heap, (candidate, _node_key(parent)))

        self._shortest_cache.update(best)
        return best.get((nonterminal, i, j))


#: Historical name of the forest index (pre-semiring API).
PathIndex = AllPathIndex


def _node_key(node: tuple[Nonterminal, int, int]) -> tuple[str, int, int]:
    head, i, j = node
    return (head.name, i, j)


def _as_nonterminal(value: Nonterminal | str) -> Nonterminal:
    return value if isinstance(value, Nonterminal) else Nonterminal(value)
