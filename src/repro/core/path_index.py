"""Derivation index: the all-path parse forest over the closed matrices.

The paper's §7 asks whether parse forests — the natural answer
representation for the *all-path* semantics — can be built by matrix
multiplication on graphs, as Okhotin [19] does for linear inputs.  The
semiring-generalized closure answers it directly: running
:func:`repro.core.closure.run_closure` over the **witness semiring**
(:class:`repro.core.semiring.WitnessSemiring`) annotates every cell
``(A, i, j)`` with its complete *midpoint index* — every terminal edge
``(i, x, j)`` with ``(A → x) ∈ P`` and every binary split
``(A → B C, r)`` with ``(i, r) ∈ R_B`` and ``(r, j) ∈ R_C``.  That is
the shared packed forest (an SPPF in parsing terms: nodes ``(A, i, j)``,
packed children per split), computed by the same strategy-pluggable
engine (``naive`` / ``delta`` / ``blocked``) as the relational answer.

:class:`AllPathIndex` wraps the annotated closure and supports:

* :meth:`splits` / :meth:`terminal_edges` — forest inspection;
* :meth:`count_paths` — the number of distinct derivation paths up to a
  length bound, by dynamic programming over the forest (no enumeration);
* :meth:`iter_paths` — lazy enumeration in order of increasing length;
* :meth:`shortest_path_length` — minimal witness length per pair (the
  quantity Hellings' single-path algorithm computes [12], and exactly
  the length-semiring annotation of
  :mod:`repro.core.single_path` — cross-checked in the tests).

Cycles in the graph make the forest cyclic (infinitely many paths); the
DP and the enumerator are bound-parameterized, which is the standard
annotated-grammar-free way to keep the all-path answer finite (§7).
Enumeration recurses on *exact* path lengths, which strictly decrease
at every split, so it terminates on cyclic forests by construction.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict
from typing import Hashable, Iterator

from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import LabeledGraph
from .relations import ContextFreeRelations
from .semiring import (
    COUNTING_SEMIRING,
    VITERBI_SEMIRING,
    WITNESS_SEMIRING,
    CountingSemiring,
    ViterbiSemiring,
    solve_annotated,
)
from .single_path import Path

#: One binary split of (A, i, j): (left nonterminal, right nonterminal, mid).
Split = tuple[Nonterminal, Nonterminal, int]


class LengthRank:
    """Rank paths by length — shortest first (the default k-best order)."""

    name = "length"

    def edge_value(self, label: str) -> int:
        return 1

    def empty_value(self) -> int:
        return 0

    def combine(self, left, right):
        return left + right

    def better(self, left, right) -> bool:
        return left < right

    def heap_key(self, value):
        """Map a rank value onto min-heap order (identity for lengths)."""
        return value


class ViterbiRank:
    """Rank paths by max-product probability — most probable first.

    Wraps a :class:`repro.core.semiring.ViterbiSemiring` for its edge
    weights; ``combine`` multiplies and ``heap_key`` negates so the
    min-heap pops the most probable partial derivation first.
    """

    def __init__(self, semiring: ViterbiSemiring | None = None):
        self.semiring = semiring or VITERBI_SEMIRING
        self.name = f"viterbi[{self.semiring.name}]"

    def edge_value(self, label: str) -> float:
        return self.semiring.edge_weight(label)

    def empty_value(self) -> float:
        return 1.0

    def combine(self, left, right):
        return left * right

    def better(self, left, right) -> bool:
        return left > right

    def heap_key(self, value):
        return -value


class AllPathIndex:
    """The implicit parse forest of one CFPQ evaluation.

    Build it with :meth:`build` (runs the witness-semiring closure and
    stores the midpoint index per forest node) or construct it directly
    from pre-computed relations, in which case splits are derived on
    demand from the row views — both paths yield the same forest.
    """

    def __init__(self, graph: LabeledGraph, grammar: CFG,
                 relations: ContextFreeRelations,
                 splits_index: dict[tuple[Nonterminal, int, int],
                                    tuple[Split, ...]] | None = None):
        self.graph = graph
        self.grammar = grammar
        self.relations = relations
        #: Midpoint index from the witness closure; None when built from
        #: bare relations (splits computed on demand instead).
        self._splits_index = splits_index
        # (i, j) -> labels of edges i -> j (for terminal derivations)
        self._edge_labels: dict[tuple[int, int], list[str]] = defaultdict(list)
        for i, label, j in graph.edges_by_id():
            self._edge_labels[(i, j)].append(label)
        # per non-terminal: i -> set of j (row view of R_A)
        self._rows: dict[Nonterminal, dict[int, set[int]]] = {}
        for nonterminal in grammar.nonterminals:
            rows: dict[int, set[int]] = defaultdict(set)
            for i, j in relations.pairs(nonterminal):
                rows[i].add(j)
            self._rows[nonterminal] = dict(rows)
        # Exact-length enumeration memo: (A, i, j, length) -> paths.
        self._length_memo: dict[tuple[Nonterminal, int, int, int],
                                tuple[Path, ...]] = {}
        # Best-completion caches shared across queries, one per rank:
        # one Dijkstra run settles every node of the reachable
        # sub-forest, and the sub-forest is closed under children, so
        # those optima are globally correct and reusable.
        self._rank_cache: dict[str, dict[tuple[Nonterminal, int, int],
                                         object]] = {}
        self._shortest_cache = self._rank_cache.setdefault("length", {})
        # Ranked-alternative cache per forest node (k-best expansion).
        self._alternatives_cache: dict[tuple[str, Nonterminal, int, int],
                                       tuple] = {}
        #: Instrumentation for the streaming guarantee: heap pops
        #: (expansions) and paths yielded by the k-best enumerator.
        self.kbest_stats = {"expansions": 0, "yielded": 0}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: LabeledGraph, grammar: CFG,
              strategy: str | None = None,
              **strategy_options) -> "AllPathIndex":
        """Run the witness-semiring closure engine and wrap its forest.

        *strategy* selects the closure strategy (engine default when
        None; extra keyword options such as ``tile_size`` / ``scheduler``
        are forwarded); every strategy produces the identical forest.
        """
        cnf = ensure_cnf(grammar)
        result = solve_annotated(graph, cnf, WITNESS_SEMIRING,
                                 strategy=strategy, normalize=False,
                                 **strategy_options)
        return cls.from_witness_matrices(graph, cnf, result.matrices)

    @classmethod
    def from_witness_matrices(cls, graph: LabeledGraph, grammar: CFG,
                              matrices: dict) -> "AllPathIndex":
        """Wrap already-closed witness-semiring matrices (a finished
        :func:`solve_annotated` run, or matrices re-materialized from a
        snapshot payload) as a forest index."""
        pairs_by_nonterminal: dict[Nonterminal, set[tuple[int, int]]] = {}
        splits_index: dict[tuple[Nonterminal, int, int], tuple[Split, ...]] = {}
        for nonterminal, matrix in matrices.items():
            pairs_by_nonterminal[nonterminal] = set(matrix.nonzero_pairs())
            for i, j, witnesses in matrix.nonzero_cells():
                splits = sorted(
                    ((entry[1], entry[2], entry[3])
                     for entry in witnesses if entry[0] == "split"),
                    key=lambda split: (split[0].name, split[1].name, split[2]),
                )
                if splits:
                    splits_index[(nonterminal, i, j)] = tuple(splits)
        relations = ContextFreeRelations(graph, pairs_by_nonterminal)
        return cls(graph, grammar, relations, splits_index=splits_index)

    # ------------------------------------------------------------------
    # Forest structure
    # ------------------------------------------------------------------
    def terminal_edges(self, nonterminal: Nonterminal, i: int,
                       j: int) -> list[str]:
        """Labels x with ``(i, x, j) ∈ E`` and ``(A → x) ∈ P``."""
        return [
            label for label in self._edge_labels.get((i, j), ())
            if nonterminal in self.grammar.heads_for_terminal(Terminal(label))
        ]

    def splits(self, nonterminal: Nonterminal, i: int, j: int) -> list[Split]:
        """All binary decompositions of the forest node ``(A, i, j)``."""
        if self._splits_index is not None:
            return list(self._splits_index.get((nonterminal, i, j), ()))
        found: list[Split] = []
        for rule in self.grammar.productions_for(nonterminal):
            if not rule.is_binary_rule:
                continue
            left, right = rule.body  # type: ignore[misc]
            left_row = self._rows.get(left, {}).get(i, ())
            right_rows = self._rows.get(right, {})
            for r in left_row:
                if j in right_rows.get(r, ()):
                    found.append((left, right, r))  # type: ignore[arg-type]
        return found

    def node_exists(self, nonterminal: Nonterminal, i: int, j: int) -> bool:
        """``(i, j) ∈ R_A``."""
        return j in self._rows.get(nonterminal, {}).get(i, ())

    def _has_empty_path(self, nonterminal: Nonterminal, i: int,
                        j: int) -> bool:
        """True when the empty path ``iπi`` witnesses ``(i, j) ∈ R_A``
        (diagonal cell of an originally-nullable non-terminal)."""
        return i == j and nonterminal in self.grammar.nullable_diagonal

    # ------------------------------------------------------------------
    # Path counting (DP over the forest, length-stratified)
    # ------------------------------------------------------------------
    def count_paths(self, nonterminal: Nonterminal | str, source: Hashable,
                    target: Hashable, max_length: int,
                    semiring: CountingSemiring | None = None) -> int:
        """Number of distinct derivation paths of length ≤ *max_length*,
        saturating at the counting semiring's cap.

        DP on ``counts[(A, i, j)][l]`` = number of derivations of exactly
        length l; splits convolve left and right counts, folded through
        the counting semiring's saturating scalar ops — the same ⊗/⊕
        arithmetic the closure-level counting annotation runs on the
        matrix kernels (the two counts are asserted equal in the tests).
        Distinct *derivations* of the same edge sequence (ambiguous
        grammars) count once per edge sequence — we count paths, not
        parse trees, by deduplicating at the edge-sequence level per
        length via the enumerator when ambiguity is possible.  For
        unambiguous grammars the DP is exact and O(nodes · max_length²).
        """
        semiring = semiring or COUNTING_SEMIRING
        nonterminal = _as_nonterminal(nonterminal)
        i = self.graph.node_id(source)
        j = self.graph.node_id(target)
        if self._grammar_is_ambiguous():
            total = 0
            for _ in self.iter_paths(nonterminal, source, target,
                                     max_length):
                total = semiring.saturating_add(total, 1)
            return total
        empty = 1 if self._has_empty_path(nonterminal, i, j) else 0
        return semiring.saturating_add(
            empty, self._count_dp(nonterminal, i, j, max_length, semiring)
        )

    def _grammar_is_ambiguous(self) -> bool:
        """Cheap over-approximation: a grammar with two rules sharing a
        head that can derive the same spans may be ambiguous; we only
        shortcut the DP for obviously-unambiguous single-rule heads."""
        by_head: dict[Nonterminal, int] = defaultdict(int)
        for rule in self.grammar.productions:
            by_head[rule.head] += 1
        return any(count > 1 for count in by_head.values())

    def _count_dp(self, nonterminal: Nonterminal, i: int, j: int,
                  max_length: int, semiring: CountingSemiring) -> int:
        sat_add = semiring.saturating_add
        sat_mul = semiring.saturating_multiply
        memo: dict[tuple[Nonterminal, int, int], list[int]] = {}

        def counts(head: Nonterminal, a: int, b: int) -> list[int]:
            key = (head, a, b)
            if key in memo:
                return memo[key]
            vector = [0] * (max_length + 1)
            memo[key] = vector  # cycle guard: zeros while computing
            if 1 <= max_length and self.terminal_edges(head, a, b):
                vector[1] = sat_add(vector[1],
                                    len(self.terminal_edges(head, a, b)))
            for left, right, r in self.splits(head, a, b):
                left_counts = counts(left, a, r)
                right_counts = counts(right, r, b)
                for l1 in range(1, max_length):
                    if not left_counts[l1]:
                        continue
                    for l2 in range(1, max_length - l1 + 1):
                        if right_counts[l2]:
                            vector[l1 + l2] = sat_add(
                                vector[l1 + l2],
                                sat_mul(left_counts[l1], right_counts[l2]),
                            )
            return vector

        # Fixpoint for cyclic forests: iterate until counts stabilize.
        previous = None
        for _ in range(max_length + 1):
            memo.clear()
            total = 0
            for entry in counts(nonterminal, i, j):
                total = sat_add(total, entry)
            if total == previous:
                break
            previous = total
        return previous or 0

    # ------------------------------------------------------------------
    # Lazy enumeration (shortest first)
    # ------------------------------------------------------------------
    def iter_paths(self, nonterminal: Nonterminal | str, source: Hashable,
                   target: Hashable, max_length: int) -> Iterator[Path]:
        """Enumerate all distinct paths of length ≤ *max_length*, in
        non-decreasing length order.

        Terminates on cyclic graphs: the recursion is on *exact* path
        lengths, which strictly decrease at every split.
        """
        nonterminal = _as_nonterminal(nonterminal)
        i = self.graph.node_id(source)
        j = self.graph.node_id(target)
        if not self.node_exists(nonterminal, i, j):
            return
        emitted: set[Path] = set()
        if self._has_empty_path(nonterminal, i, j):
            emitted.add(())
            yield ()
        for length in range(1, max_length + 1):
            for path in self._paths_of_length(nonterminal, i, j, length):
                if path not in emitted:
                    emitted.add(path)
                    yield path

    def _paths_of_length(self, head: Nonterminal, i: int, j: int,
                         length: int) -> tuple[Path, ...]:
        """All derivation paths of (head, i, j) of *exactly* `length`.

        Memoized; safe on cyclic forests because every split recurses on
        strictly smaller lengths (1 ≤ l1 < length), so (head, i, j,
        length) can never re-enter itself.
        """
        key = (head, i, j, length)
        cached = self._length_memo.get(key)
        if cached is not None:
            return cached
        found: list[Path] = []
        if length == 1:
            found = [((i, label, j),)
                     for label in self.terminal_edges(head, i, j)]
        else:
            seen: set[Path] = set()
            for left, right, r in self.splits(head, i, j):
                for l1 in range(1, length):
                    for left_path in self._paths_of_length(left, i, r, l1):
                        for right_path in self._paths_of_length(
                                right, r, j, length - l1):
                            combined = left_path + right_path
                            if combined not in seen:
                                seen.add(combined)
                                found.append(combined)
        result = tuple(found)
        self._length_memo[key] = result
        return result

    # ------------------------------------------------------------------
    # Lazy k-best (ranked alternatives per node, heap-popped best-first)
    # ------------------------------------------------------------------
    def _ranked_alternatives(self, node: tuple[Nonterminal, int, int],
                             rank) -> tuple:
        """The node's derivation alternatives, best-first under *rank*.

        Each alternative is ``(entry, lower_bound)`` where *entry* is
        ``("edge", label, value)`` or ``("split", left_node, right_node)``
        and *lower_bound* is the best completable path value through it
        (exact for edges; the combined child optima for splits).  Splits
        whose children admit no non-empty path are unreachable and
        dropped.  Deterministically ordered (rank key, then edges before
        splits, then label / split identity), so every strategy's forest
        enumerates identically.
        """
        cache_key = (rank.name,) + node
        cached = self._alternatives_cache.get(cache_key)
        if cached is not None:
            return cached
        head, a, b = node
        ranked: list = []
        for label in sorted(self.terminal_edges(head, a, b)):
            value = rank.edge_value(label)
            ranked.append((rank.heap_key(value), 0, label,
                           (("edge", label, value), value)))
        for left, right, r in self.splits(head, a, b):
            left_node = (left, a, r)
            right_node = (right, r, b)
            left_best = self._best_completion(left_node, rank)
            right_best = self._best_completion(right_node, rank)
            if left_best is None or right_best is None:
                continue
            bound = rank.combine(left_best, right_best)
            ranked.append((rank.heap_key(bound), 1,
                           (left.name, right.name, r),
                           (("split", left_node, right_node), bound)))
        ranked.sort(key=lambda alt: alt[:3])
        result = tuple(alt[3] for alt in ranked)
        self._alternatives_cache[cache_key] = result
        return result

    def iter_k_best(self, nonterminal: Nonterminal | str, source: Hashable,
                    target: Hashable, max_length: int | None = None,
                    rank=None) -> Iterator[Path]:
        """Lazily enumerate paths best-first under *rank* (default:
        shortest first; :class:`ViterbiRank`: most probable first).

        Best-first search over partial derivations: a state is a
        concrete edge prefix plus the pending forest goals (leftmost
        first), and its heap priority is the exact prefix value combined
        with each goal's cached best completion — an exact lower bound,
        so states pop in true path order and the first k pops of
        complete paths *are* the k best.  At every goal the node's
        ranked alternatives are consumed lazily: popping a state pushes
        only its next-sibling alternative, never the whole fan-out, so
        the full path set is never materialized (``kbest_stats`` counts
        the heap pops the streaming tests bound).  Duplicate edge
        sequences from ambiguous derivations are emitted once,
        matching :meth:`iter_paths`.
        """
        rank = rank or LengthRank()
        nonterminal = _as_nonterminal(nonterminal)
        i = self.graph.node_id(source)
        j = self.graph.node_id(target)
        if not self.node_exists(nonterminal, i, j):
            return
        stats = self.kbest_stats
        if self._has_empty_path(nonterminal, i, j):
            stats["yielded"] += 1
            yield ()
        root = (nonterminal, i, j)
        if self._best_completion(root, rank) is None:
            return
        length_rank = rank if isinstance(rank, LengthRank) else LengthRank()

        serial = itertools.count()
        heap: list = []

        def push(edges: Path, value, goals: tuple, alt_index: int) -> None:
            if not goals:
                heapq.heappush(heap, (rank.heap_key(value), next(serial),
                                      edges, value, (), 0, True))
                return
            alternatives = self._ranked_alternatives(goals[0], rank)
            if alt_index >= len(alternatives):
                return
            bound = rank.combine(value, alternatives[alt_index][1])
            for goal in goals[1:]:
                bound = rank.combine(bound,
                                     self._best_completion(goal, rank))
            heapq.heappush(heap, (rank.heap_key(bound), next(serial),
                                  edges, value, goals, alt_index, False))

        push((), rank.empty_value(), (root,), 0)
        emitted: set[Path] = set()
        while heap:
            (_key, _tie, edges, value, goals,
             alt_index, done) = heapq.heappop(heap)
            stats["expansions"] += 1
            if done:
                if max_length is not None and len(edges) > max_length:
                    continue
                if edges not in emitted:
                    emitted.add(edges)
                    stats["yielded"] += 1
                    yield edges
                continue
            if max_length is not None:
                floor = len(edges)
                for goal in goals:
                    shortest = self._best_completion(goal, length_rank)
                    floor = (max_length + 1 if shortest is None
                             else floor + shortest)
                if floor > max_length:
                    continue
            push(edges, value, goals, alt_index + 1)
            entry, _bound = self._ranked_alternatives(goals[0], rank)[alt_index]
            if entry[0] == "edge":
                _kind, label, weight = entry
                _head, a, b = goals[0]
                push(edges + ((a, label, b),), rank.combine(value, weight),
                     goals[1:], 0)
            else:
                _kind, left_node, right_node = entry
                push(edges, value, (left_node, right_node) + goals[1:], 0)

    def top_k(self, nonterminal: Nonterminal | str, source: Hashable,
              target: Hashable, k: int, max_length: int | None = None,
              rank=None) -> list[Path]:
        """The *k* best paths (see :meth:`iter_k_best`); a prefix of
        ``top_k(..., k + 1)`` by construction — one lazy iterator,
        truncated."""
        if k < 0:
            raise ValueError("k must be non-negative")
        return list(itertools.islice(
            self.iter_k_best(nonterminal, source, target,
                             max_length=max_length, rank=rank), k))

    # ------------------------------------------------------------------
    # Shortest witnesses
    # ------------------------------------------------------------------
    def shortest_path_length(self, nonterminal: Nonterminal | str,
                             source: Hashable, target: Hashable) -> int | None:
        """The minimal witness length for ``(source, target) ∈ R_A`` —
        Dijkstra over forest nodes (every node's cost = min over its
        terminal edges and splits)."""
        nonterminal = _as_nonterminal(nonterminal)
        i = self.graph.node_id(source)
        j = self.graph.node_id(target)
        if not self.node_exists(nonterminal, i, j):
            return None
        if self._has_empty_path(nonterminal, i, j):
            return 0
        return self._best_completion((nonterminal, i, j), LengthRank())

    def _best_completion(self, root: tuple[Nonterminal, int, int],
                         rank) -> object | None:
        """The best *non-empty* path value of *root* under *rank*
        (length: the minimum; viterbi: the maximum probability), or None
        when only the empty path witnesses it.

        Generic Dijkstra over forest nodes: collect the reachable
        sub-forest, then relax from terminal leaves upward with the
        rank's ``combine``/``better``.  Settled optima are cached per
        rank and reused — the sub-forest is closed under children, so
        they are globally correct.
        """
        cache = self._rank_cache.setdefault(rank.name, {})
        if root in cache:
            return cache[root]

        best: dict[tuple[Nonterminal, int, int], object] = {}
        dependents: dict[tuple, list[tuple]] = defaultdict(list)
        nodes: set[tuple[Nonterminal, int, int]] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in nodes:
                continue
            nodes.add(node)
            head, a, b = node
            for left, right, r in self.splits(head, a, b):
                left_node = (left, a, r)
                right_node = (right, r, b)
                dependents[left_node].append((node, left_node, right_node))
                dependents[right_node].append((node, left_node, right_node))
                stack.extend((left_node, right_node))

        heap: list = []
        for node in nodes:
            head, a, b = node
            labels = self.terminal_edges(head, a, b)
            if labels:
                cost = None
                for label in labels:
                    value = rank.edge_value(label)
                    if cost is None or rank.better(value, cost):
                        cost = value
                best[node] = cost
                heapq.heappush(heap, (rank.heap_key(cost), _node_key(node)))

        keyed = {_node_key(node): node for node in nodes}
        while heap:
            key, node_key = heapq.heappop(heap)
            node = keyed[node_key]
            settled = best.get(node)
            if settled is None or key > rank.heap_key(settled):
                continue
            for parent, left_node, right_node in dependents[node]:
                left_cost = best.get(left_node)
                right_cost = best.get(right_node)
                if left_cost is None or right_cost is None:
                    continue
                candidate = rank.combine(left_cost, right_cost)
                current = best.get(parent)
                if current is None or rank.better(candidate, current):
                    best[parent] = candidate
                    heapq.heappush(
                        heap, (rank.heap_key(candidate), _node_key(parent))
                    )

        cache.update(best)
        cache.setdefault(root, best.get(root))
        return best.get(root)


#: Historical name of the forest index (pre-semiring API).
PathIndex = AllPathIndex


def _node_key(node: tuple[Nonterminal, int, int]) -> tuple[str, int, int]:
    head, i, j = node
    return (head.name, i, j)


def _as_nonterminal(value: Nonterminal | str) -> Nonterminal:
    return value if isinstance(value, Nonterminal) else Nonterminal(value)
