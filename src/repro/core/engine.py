"""High-level query engine — the library's main entry point.

Typical use::

    from repro import CFPQEngine, parse_grammar
    from repro.graph import load_graph_file

    grammar = parse_grammar("S -> a S b | a b", terminals=["a", "b"])
    graph = load_graph_file("graph.txt")

    engine = CFPQEngine(graph, grammar)            # normalizes to CNF once
    pairs = engine.relational("S")                 # frozenset of node pairs
    path = engine.single_path("S", 0, 3)           # one witness path
    all_paths = engine.all_paths("S", 0, 3, max_length=10)

The engine normalizes the grammar a single time, caches the solved
closure per (backend, strategy), and maps results back to the caller's
node objects.
"""

from __future__ import annotations

from typing import Hashable

from ..errors import SemanticsError
from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal
from ..graph.labeled_graph import LabeledGraph
from ..matrices.base import default_backend
from .allpath import AllPathEnumerator
from .matrix_cfpq import DEFAULT_STRATEGY, MatrixCFPQResult, solve_matrix
from .relations import ContextFreeRelations
from .single_path import (
    Path,
    SinglePathIndex,
    build_single_path_index,
    extract_path,
)

#: The query semantics understood by :meth:`CFPQEngine.evaluate`.
SEMANTICS = ("relational", "single-path", "all-path")


class CFPQEngine:
    """A prepared (graph, grammar) pair answering CFPQ queries.

    Parameters
    ----------
    graph:
        The edge-labeled graph ``D = (V, E)``.
    grammar:
        Any context-free grammar; normalized to CNF internally.
    backend:
        Default boolean matrix backend (``"sparse"``, ``"dense"``,
        ``"pyset"``, ``"bitset"`` or ``"setmatrix"``); overridable per
        call.  None picks the best registered one (``sparse`` when
        SciPy is installed).
    strategy:
        Default closure strategy (``"delta"`` / ``"naive"`` /
        ``"blocked"`` / ``"autotune"``); overridable per call.
    strategy_options:
        Extra keyword options forwarded to every closure run — e.g.
        ``tile_size=128, scheduler="process"`` for the blocked tile
        engine.
    """

    def __init__(self, graph: LabeledGraph, grammar: CFG,
                 backend: str | None = None,
                 strategy: str = DEFAULT_STRATEGY,
                 **strategy_options):
        self.graph = graph
        self.original_grammar = grammar
        self.grammar = ensure_cnf(grammar)
        self.backend = backend or default_backend()
        self.strategy = strategy
        self.strategy_options = strategy_options
        self._matrix_results: dict[tuple[str, str], MatrixCFPQResult] = {}
        self._single_path_indexes: dict[str, SinglePathIndex] = {}
        self._all_path_enumerators: dict[str, AllPathEnumerator] = {}

    # ------------------------------------------------------------------
    # Relational semantics
    # ------------------------------------------------------------------
    def solve(self, backend: str | None = None,
              strategy: str | None = None) -> MatrixCFPQResult:
        """Run (and cache) the boolean-matrix closure."""
        key = (backend or self.backend, strategy or self.strategy)
        if key not in self._matrix_results:
            self._matrix_results[key] = solve_matrix(
                self.graph, self.grammar, backend=key[0], normalize=False,
                strategy=key[1], **self.strategy_options,
            )
        return self._matrix_results[key]

    def relations(self, backend: str | None = None,
                  strategy: str | None = None) -> ContextFreeRelations:
        """All relations ``R_A`` (including CNF helper non-terminals)."""
        return self.solve(backend, strategy).relations

    def relational(self, start: Nonterminal | str,
                   backend: str | None = None,
                   strategy: str | None = None,
                   ) -> frozenset[tuple[Hashable, Hashable]]:
        """``R_S`` for the queried start non-terminal, as node objects —
        the paper's relational query semantics."""
        start_nt = _as_nonterminal(start)
        self.grammar.require_nonterminal(start_nt)
        return self.relations(backend, strategy).node_pairs(start_nt)

    def count(self, start: Nonterminal | str, backend: str | None = None,
              strategy: str | None = None) -> int:
        """``|R_S|`` — the paper's #results."""
        return len(self.relational(start, backend, strategy))

    # ------------------------------------------------------------------
    # Single-path semantics (Section 5)
    # ------------------------------------------------------------------
    def single_path_index(self, strategy: str | None = None,
                          ) -> SinglePathIndex:
        """The length-annotated closure, built once per strategy.

        Runs on the same semiring-generalized closure engine as the
        relational answer; every strategy yields identical annotations,
        so overriding *strategy* only changes how the fixpoint is
        iterated.
        """
        key = strategy or self.strategy
        if key not in self._single_path_indexes:
            self._single_path_indexes[key] = build_single_path_index(
                self.graph, self.grammar, normalize=False, strategy=key,
                **self.strategy_options,
            )
        return self._single_path_indexes[key]

    def single_path(self, start: Nonterminal | str, source: Hashable,
                    target: Hashable, strategy: str | None = None) -> Path:
        """One witness path for ``(start, source, target)``; raises
        :class:`~repro.errors.PathNotFoundError` when the pair is not in
        the relation."""
        start_nt = _as_nonterminal(start)
        self.grammar.require_nonterminal(start_nt)
        return extract_path(self.single_path_index(strategy), start_nt,
                            source, target)

    def path_length(self, start: Nonterminal | str, source: Hashable,
                    target: Hashable, strategy: str | None = None,
                    ) -> int | None:
        """The recorded witness-path length ``l_A``, or None."""
        start_nt = _as_nonterminal(start)
        index = self.single_path_index(strategy)
        return index.length_of(
            start_nt, self.graph.node_id(source), self.graph.node_id(target)
        )

    # ------------------------------------------------------------------
    # Bounded all-path semantics (§7 future work)
    # ------------------------------------------------------------------
    def all_path_enumerator(self, strategy: str | None = None,
                            ) -> AllPathEnumerator:
        """The all-path enumerator, built once per strategy and cached."""
        key = strategy or self.strategy
        if key not in self._all_path_enumerators:
            self._all_path_enumerators[key] = AllPathEnumerator(
                self.graph, self.grammar, normalize=False, strategy=key,
                **self.strategy_options,
            )
        return self._all_path_enumerators[key]

    def all_paths(self, start: Nonterminal | str, source: Hashable,
                  target: Hashable, max_length: int,
                  strategy: str | None = None) -> frozenset[Path]:
        """All witness paths of length ≤ *max_length*."""
        return self.all_path_enumerator(strategy).paths(
            _as_nonterminal(start), source, target, max_length
        )

    # ------------------------------------------------------------------
    # Warm-start adoption (snapshot store)
    # ------------------------------------------------------------------
    def adopt_solution(self, result: MatrixCFPQResult,
                       backend: str | None = None,
                       strategy: str | None = None) -> None:
        """Install a pre-computed relational solution into the solve
        cache, so :meth:`solve`/:meth:`relational` answer without
        running any closure.  Used by the snapshot loader
        (:mod:`repro.service.snapshot`); the result must be the closure
        of this engine's graph and grammar."""
        self._matrix_results[(backend or self.backend,
                              strategy or self.strategy)] = result

    def adopt_single_path_index(self, index: SinglePathIndex,
                                strategy: str | None = None) -> None:
        """Install a pre-computed length-annotated index (see
        :meth:`adopt_solution`)."""
        self._single_path_indexes[strategy or self.strategy] = index

    def adopt_all_path_enumerator(self, enumerator: AllPathEnumerator,
                                  strategy: str | None = None) -> None:
        """Install a pre-computed all-path enumerator (see
        :meth:`adopt_solution`)."""
        self._all_path_enumerators[strategy or self.strategy] = enumerator

    def save_snapshot(self, path: str,
                      semantics: tuple[str, ...] = SEMANTICS) -> int:
        """Persist the solved index to *path* (solving any missing
        *semantics* first); returns the snapshot size in bytes.  See
        :mod:`repro.service.snapshot` for the format."""
        from ..service.snapshot import save_engine_snapshot

        return save_engine_snapshot(path, self, semantics=semantics)

    @classmethod
    def from_snapshot(cls, path: str, backend: str | None = None,
                      strategy: str | None = None,
                      memory_budget=None,
                      spill_dir: str | None = None) -> "CFPQEngine":
        """Load a warm engine from a snapshot file: every semantics the
        snapshot carries answers in O(load), with zero closure rounds.
        A *memory_budget* loads the relational matrices into a spillable
        tile store instead of keeping them all resident (see
        :func:`repro.service.snapshot.load_engine_snapshot`)."""
        from ..service.snapshot import load_engine_snapshot

        return load_engine_snapshot(path, backend=backend,
                                    strategy=strategy,
                                    memory_budget=memory_budget,
                                    spill_dir=spill_dir)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def incremental(self, single_path: bool = False):
        """An incremental solver over this engine's graph, grammar and
        closure configuration (backend / strategy / strategy options).

        The returned :class:`~repro.core.incremental.IncrementalCFPQ`
        (or, with *single_path*, the length-maintaining
        :class:`~repro.core.incremental.IncrementalSinglePathCFPQ`)
        supports batch ``add_edges`` and DRed ``remove_edges`` and keeps
        the relations at the fixpoint after every update.  Note it
        mutates ``self.graph`` — cached engine results are built for the
        graph at call time and are not refreshed by the solver.
        """
        from .incremental import IncrementalCFPQ, IncrementalSinglePathCFPQ

        if single_path:
            return IncrementalSinglePathCFPQ(
                self.graph, self.grammar, strategy=self.strategy,
                **self.strategy_options,
            )
        return IncrementalCFPQ(
            self.graph, self.grammar, backend=self.backend,
            strategy=self.strategy, **self.strategy_options,
        )

    # ------------------------------------------------------------------
    # Uniform entry point
    # ------------------------------------------------------------------
    def evaluate(self, start: Nonterminal | str, semantics: str = "relational",
                 **kwargs):
        """Dispatch on *semantics* (``relational`` | ``single-path`` |
        ``all-path``); see the specific methods for the result types."""
        if semantics == "relational":
            return self.relational(start, backend=kwargs.get("backend"),
                                   strategy=kwargs.get("strategy"))
        if semantics == "single-path":
            index = self.single_path_index(kwargs.get("strategy"))
            start_nt = _as_nonterminal(start)
            return {
                (self.graph.node_at(i), self.graph.node_at(j)):
                    extract_path(index, start_nt, self.graph.node_at(i),
                                 self.graph.node_at(j))
                for (i, j), entries in index.cells.items()
                if start_nt in entries
            }
        if semantics == "all-path":
            max_length = kwargs.get("max_length")
            if max_length is None:
                raise SemanticsError("all-path semantics requires max_length=")
            start_nt = _as_nonterminal(start)
            enumerator = self.all_path_enumerator(kwargs.get("strategy"))
            return {
                (self.graph.node_at(i), self.graph.node_at(j)): paths
                for i in range(self.graph.node_count)
                for j in range(self.graph.node_count)
                if (paths := enumerator.paths(
                    start_nt, self.graph.node_at(i), self.graph.node_at(j),
                    max_length))
            }
        raise SemanticsError(
            f"unknown semantics {semantics!r}; expected one of {SEMANTICS}"
        )


def cfpq(graph: LabeledGraph, grammar: CFG, start: Nonterminal | str,
         backend: str | None = None, strategy: str = DEFAULT_STRATEGY,
         ) -> frozenset[tuple[Hashable, Hashable]]:
    """One-shot relational CFPQ: ``R_start`` as node-object pairs."""
    return CFPQEngine(graph, grammar, backend=backend,
                      strategy=strategy).relational(start)


def _as_nonterminal(value: Nonterminal | str) -> Nonterminal:
    return value if isinstance(value, Nonterminal) else Nonterminal(value)
