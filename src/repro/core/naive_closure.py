"""Algorithm 1 in its literal, set-matrix form.

``contextFreePathQuerying(D, G)`` from the paper (Section 4.2):

1. enumerate graph nodes ``0 .. |V|-1``;
2. initialize ``T[i,j] = {A | (i,x,j) ∈ E, (A → x) ∈ P}``;
3. iterate ``T ← T ∪ (T × T)`` until the matrix stops changing;
4. read ``R_A = {(i, j) | A ∈ T_cf[i,j]}`` (Theorem 2).

This implementation exists for clarity and as a differential-testing
oracle; the boolean-decomposed engine in
:mod:`repro.core.matrix_cfpq` is the production path.  The fixpoint
iteration runs on the generic driver shared with the closure engine
(:func:`repro.core.closure.fixpoint_history` via
:func:`repro.core.transitive_closure.closure_cf_history`), so all
solvers iterate through one piece of loop machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..graph.labeled_graph import LabeledGraph
from ..matrices.setmatrix import SetMatrix, initial_matrix
from .relations import ContextFreeRelations
from .transitive_closure import closure_cf, closure_cf_history


@dataclass(frozen=True)
class NaiveClosureResult:
    """Outcome of the set-matrix algorithm: final matrix, iteration
    count (the paper's ``k`` such that ``T_k = T_{k-1}``) and the
    extracted relations."""

    matrix: SetMatrix
    iterations: int
    relations: ContextFreeRelations


def build_initial_matrix(graph: LabeledGraph, grammar: CFG) -> SetMatrix:
    """Algorithm 1 lines 2-7: the |V|×|V| set-valued matrix ``T0``."""
    return initial_matrix(graph.node_count, grammar, graph.edges_by_id())


def solve_naive(graph: LabeledGraph, grammar: CFG,
                normalize: bool = True) -> NaiveClosureResult:
    """Run the paper's Algorithm 1 literally.

    With *normalize* (default) the grammar is converted to CNF first;
    the returned relations then cover every non-terminal of the
    *normalized* grammar (original non-terminals keep their names, so
    querying the original start symbol works unchanged).
    """
    working_grammar = ensure_cnf(grammar) if normalize else grammar
    working_grammar.require_cnf("Algorithm 1")

    history = closure_cf_history(build_initial_matrix(graph, working_grammar))
    final = history[-1]
    # history = [T0, T1, ..., Tk] with Tk == T(k-1); the loop body ran
    # len(history) - 1 times.
    iterations = len(history) - 1

    relations = relations_from_matrix(graph, working_grammar, final)
    return NaiveClosureResult(matrix=final, iterations=iterations,
                              relations=relations)


def solve_naive_with_history(graph: LabeledGraph, grammar: CFG,
                             normalize: bool = True) -> list[SetMatrix]:
    """The full matrix sequence ``[T0, T1, ..., Tk]`` — reproduces the
    paper's Figures 6-8 step by step."""
    working_grammar = ensure_cnf(grammar) if normalize else grammar
    working_grammar.require_cnf("Algorithm 1")
    return closure_cf_history(build_initial_matrix(graph, working_grammar))


def relations_from_matrix(graph: LabeledGraph, grammar: CFG,
                          matrix: SetMatrix) -> ContextFreeRelations:
    """Read every ``R_A`` out of a closed matrix (Theorem 2)."""
    return ContextFreeRelations(
        graph,
        {nt: matrix.pairs_with(nt) for nt in grammar.nonterminals},
    )
