"""Incremental CFPQ: maintaining relations under edge insertions *and*
deletions.

Graph databases mutate; recomputing the whole closure per update wastes
the work already done.  Two complementary engines keep the relations
``R_A`` at the fixpoint:

**Insertions** exploit that Algorithm 1's fixpoint is a *monotone*
least fixpoint (Theorem 3's argument: facts are only ever added), so
the closure supports semi-naive delta propagation at two granularities:

* :meth:`IncrementalCFPQ.add_edge` — tuple-granular: seed a worklist
  with the new base facts ``{(A, u, v) | (A → x) ∈ P}`` and propagate
  only their consequences through the pair rules (the Hellings step
  started from the delta);
* :meth:`IncrementalCFPQ.add_edges` — **matrix-granular batch path**:
  convert the whole insertion batch into per-non-terminal delta
  matrices and hand them to the closure engine as an
  ``initial_frontier`` (:func:`repro.core.closure.run_closure`), so a
  bulk load runs as a handful of frontier × matrix products instead of
  one worklist pop per derived fact.  The solver's ``strategy`` /
  ``scheduler`` / ``tile_size`` options apply: with
  ``strategy="blocked"`` the inserted edges become a *tile-granular*
  frontier on the parallel tile engine of :mod:`repro.core.tiles`.

**Deletions** break monotonicity, so :meth:`IncrementalCFPQ.remove_edges`
runs support-counted **delete-and-rederive** (DRed) over the same
machinery: every fact carries its *derivation supports* (the terminal
edges, ``("empty",)`` nullability marks and binary ``(rule, midpoint)``
splits that derive it in one step).  Removing edges (1) **over-deletes**
the downward closure of the touched facts — count-blind, which is what
makes the phase sound on cyclic derivations where support counts alone
would keep self-supporting facts alive — while discarding the
invalidated supports, then (2) **re-derives**: the over-deleted facts
whose remaining supports are non-empty are exactly the ones one-step
derivable from the survivors, and one ``initial_frontier`` closure run
seeded with them restores everything still derivable.

The support index itself is **matrix-granular** by default
(:class:`CountingSupportIndex`): supports live as counting-semiring
annotations (:class:`repro.core.semiring.CountingSemiring`, cap 1) on
per-non-terminal annotated matrices, built by one counting closure on
the first deletion and maintained by the same ``union_update`` /
``difference`` / ``mxm_into`` kernels every batch insertion and
re-derivation already runs — one representation for derivation counting
and deletion support.  The original tuple-set index survives as
:class:`TupleSupportIndex` (``support_mode="tuples"``, or the
``REPRO_SUPPORT_MODE`` environment variable), demoted to a differential
test oracle.  Either way the index is built lazily on the first
deletion; insertion-only workloads never pay for it.

:class:`IncrementalSinglePathCFPQ` layers the Section-5 length
annotations on the same engine: batches run the closure over the
length-semiring adapter (:mod:`repro.core.semiring`), and deletions
recompute the lengths of the affected facts from the surviving
canonical lengths, so :meth:`~IncrementalSinglePathCFPQ.length_of`
equals a from-scratch :class:`~repro.core.single_path.SinglePathIndex`
after every update.

This realizes the dynamic-graph direction implied by the paper's
"graph databases" motivation, and it doubles as yet another
differential-testing angle: after any interleaved insert/delete
sequence the incremental state must equal a from-scratch solve
(property-tested in ``tests/core/test_incremental.py``).
"""

from __future__ import annotations

import os
from collections import defaultdict, deque
from typing import Hashable, Iterable

from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import Edge, LabeledGraph
from ..obs.trace import get_tracer
from .closure import run_closure
from .relations import ContextFreeRelations
from .semiring import SUPPORT_SEMIRING, AnnotatedBackend, CountingSemiring

#: A derived fact ``(A, i, j)`` by dense node ids.
Fact = tuple[Nonterminal, int, int]

#: One one-step derivation of a fact: ``("edge", label)`` for a base
#: edge, ``("empty",)`` for the empty path of a nullable non-terminal,
#: ``("split", B, C, r)`` for a pair rule applied at midpoint ``r``.
Support = tuple

#: Recognized values of ``IncrementalCFPQ(support_mode=...)`` and the
#: ``REPRO_SUPPORT_MODE`` environment variable.
SUPPORT_MODES = ("counting", "tuples")


def _default_support_mode() -> str:
    mode = os.environ.get("REPRO_SUPPORT_MODE", "counting").strip().lower()
    return mode if mode in SUPPORT_MODES else "counting"


class TupleSupportIndex:
    """The original tuple-set DRed support index, demoted to a
    differential-test oracle (``support_mode="tuples"``).

    One plain ``dict`` maps each fact to the set of its one-step
    derivation supports, maintained by per-fact set mutations.  The
    matrix-granular :class:`CountingSupportIndex` must agree with this
    index entry-for-entry after any interleaved insert/delete sequence
    (property-tested in ``tests/core/test_incremental.py``).
    """

    mode = "tuples"

    def __init__(self) -> None:
        self._supports: dict[Fact, set[Support]] | None = None

    @property
    def active(self) -> bool:
        return self._supports is not None

    def ensure(self, solver: "IncrementalCFPQ") -> None:
        """Build the fact → supports index on first use (one recount
        over the current facts; later updates maintain it)."""
        if self._supports is not None:
            return
        self._supports = {
            (nonterminal, i, j): self._compute(solver, nonterminal, i, j)
            for nonterminal, pairs in solver._facts.items()
            for (i, j) in pairs
        }

    @staticmethod
    def _compute(solver: "IncrementalCFPQ", nonterminal: Nonterminal,
                 i: int, j: int) -> set[Support]:
        """All one-step derivations of ``(A, i, j)`` from the current
        graph and fact indexes."""
        found: set[Support] = set()
        if i == j and nonterminal in solver._nullable:
            found.add(("empty",))
        for label in solver._terminals_for_head.get(nonterminal, ()):
            if solver.graph.has_edge_id(i, label, j):
                found.add(("edge", label))
        for left, right in solver._bodies_for_head.get(nonterminal, ()):
            for r in solver._by_source.get((left, i), ()):
                if j in solver._by_source.get((right, r), ()):
                    found.add(("split", left, right, r))
        return found

    def supports_of(self, fact: Fact) -> frozenset:
        assert self._supports is not None
        return frozenset(self._supports.get(fact, ()))

    def seed_fact(self, fact: Fact, support: Support) -> None:
        assert self._supports is not None
        self._supports[fact] = {support}

    def add_support(self, fact: Fact, support: Support) -> None:
        assert self._supports is not None
        recorded = self._supports.get(fact)
        if recorded is not None:
            recorded.add(support)

    def discard(self, fact: Fact, support: Support) -> None:
        assert self._supports is not None
        recorded = self._supports.get(fact)
        if recorded is not None:
            recorded.discard(support)

    def pop(self, fact: Fact) -> None:
        assert self._supports is not None
        self._supports.pop(fact, None)

    def entry_count(self) -> int:
        if self._supports is None:
            return 0
        return sum(len(entries) for entries in self._supports.values())

    def export(self) -> dict[Fact, set[Support]] | None:
        if self._supports is None:
            return None
        return {fact: set(entries)
                for fact, entries in self._supports.items()}

    def load(self, mapping: dict) -> None:
        self._supports = {
            fact: set(entries) for fact, entries in mapping.items()
        }

    def after_batch(self, solver: "IncrementalCFPQ",
                    support_seeds: dict | None,
                    new_facts: list[Fact]) -> None:
        """After a batch closure added *new_facts*: compute their
        supports, register the split supports they newly provide to
        existing consequences, and fold the batch's base-fact seed
        supports (new edge labels / empty paths) into pre-existing
        facts."""
        if self._supports is None:
            return
        supports = self._supports
        for fact in new_facts:
            supports[fact] = self._compute(solver, *fact)
        for nonterminal, i, j in new_facts:
            for head, right in solver._rules_by_left.get(nonterminal, ()):
                for k in solver._by_source.get((right, j), ()):
                    recorded = supports.get((head, i, k))
                    if recorded is not None:
                        recorded.add(("split", nonterminal, right, j))
            for head, left in solver._rules_by_right.get(nonterminal, ()):
                for k in solver._by_target.get((left, i), ()):
                    recorded = supports.get((head, k, j))
                    if recorded is not None:
                        recorded.add(("split", left, nonterminal, i))
        for nonterminal, cells in (support_seeds or {}).items():
            for (i, j), value in cells.items():
                recorded = supports.get((nonterminal, i, j))
                if recorded is not None:
                    recorded.update(entry for entry, _count in value)


class CountingSupportIndex:
    """Matrix-granular DRed supports carried by the counting semiring.

    The support of a fact *is* its counting-semiring annotation: a
    ``frozenset`` of ``(entry, count)`` pairs whose entry keys are
    exactly the tuple-set supports (``("edge", label)`` / ``("empty",)``
    / ``("split", B, C, r)``).  The index is one annotated matrix per
    non-terminal — built by a single counting-closure solve on the
    first deletion, and advanced after every batch by the same
    ``union_update``/``mxm_into`` kernels the relational closure runs,
    with the batch's base facts (or the re-derivation survivors) as the
    ``initial_frontier``.  Per-tuple inserts mutate cells directly, so
    single-edge updates stay O(delta).

    With the default cap-1 semiring (``SUPPORT_SEMIRING``) the values
    are *value-blind*: a cell gaining an extra derivation entry does not
    re-enter the semi-naive frontier, which is precisely the tuple-set
    index's registration semantics.
    """

    mode = "counting"

    def __init__(self, semiring: CountingSemiring | None = None) -> None:
        self.semiring = semiring if semiring is not None else SUPPORT_SEMIRING
        self._cells: dict[Nonterminal, dict[tuple[int, int], frozenset]] | None = None

    @property
    def active(self) -> bool:
        return self._cells is not None

    def ensure(self, solver: "IncrementalCFPQ") -> None:
        """First deletion: one counting-semiring closure over the
        current graph yields every fact's full one-step support set."""
        if self._cells is not None:
            return
        from .semiring import solve_annotated

        result = solve_annotated(solver.graph, solver.grammar, self.semiring,
                                 strategy=solver.strategy, normalize=False,
                                 **solver.strategy_options)
        self._cells = {
            nonterminal: {(i, j): value
                          for i, j, value in matrix.nonzero_cells()}
            for nonterminal, matrix in result.matrices.items()
        }

    def supports_of(self, fact: Fact) -> frozenset:
        assert self._cells is not None
        nonterminal, i, j = fact
        cells = self._cells.get(nonterminal)
        value = cells.get((i, j)) if cells is not None else None
        return self.semiring.supports(value)

    def seed_fact(self, fact: Fact, support: Support) -> None:
        assert self._cells is not None
        nonterminal, i, j = fact
        self._cells.setdefault(nonterminal, {})[(i, j)] = \
            frozenset({(support, 1)})

    def add_support(self, fact: Fact, support: Support) -> None:
        assert self._cells is not None
        nonterminal, i, j = fact
        cells = self._cells.setdefault(nonterminal, {})
        value = cells.get((i, j))
        if value is None:
            return
        merged, changed = self.semiring.merge(value,
                                              frozenset({(support, 1)}))
        if changed:
            cells[(i, j)] = merged

    def discard(self, fact: Fact, support: Support) -> None:
        assert self._cells is not None
        nonterminal, i, j = fact
        cells = self._cells.get(nonterminal)
        value = cells.get((i, j)) if cells is not None else None
        if value is None:
            return
        trimmed = frozenset(item for item in value if item[0] != support)
        if trimmed != value:
            cells[(i, j)] = trimmed  # type: ignore[index]

    def pop(self, fact: Fact) -> None:
        assert self._cells is not None
        nonterminal, i, j = fact
        cells = self._cells.get(nonterminal)
        if cells is not None:
            cells.pop((i, j), None)

    def entry_count(self) -> int:
        if self._cells is None:
            return 0
        return sum(len(value)
                   for cells in self._cells.values()
                   for value in cells.values())

    def export(self) -> dict[Fact, set[Support]] | None:
        if self._cells is None:
            return None
        return {
            (nonterminal, i, j): set(self.semiring.supports(value))
            for nonterminal, cells in self._cells.items()
            for (i, j), value in cells.items()
        }

    def load(self, mapping: dict) -> None:
        cells: dict[Nonterminal, dict[tuple[int, int], frozenset]] = {}
        for (nonterminal, i, j), entries in mapping.items():
            cells.setdefault(nonterminal, {})[(i, j)] = \
                frozenset((entry, 1) for entry in entries)
        self._cells = cells

    def after_batch(self, solver: "IncrementalCFPQ",
                    support_seeds: dict | None,
                    new_facts: list[Fact]) -> None:
        """Advance the support matrices through the same frontier-seeded
        closure the relational batch just ran: the seeds' base supports
        merge into their cells, and every product fired off the
        presence delta contributes its ``("split", B, C, r)`` entry to
        the head cell — which is exactly the registration the tuple
        oracle does one set-mutation at a time."""
        if self._cells is None or not support_seeds:
            return
        backend = AnnotatedBackend(self.semiring)
        n = solver.graph.node_count
        matrices = {
            nonterminal: backend.from_cells(
                (n, n), self._cells.get(nonterminal, {}), symbol=nonterminal)
            for nonterminal in solver.grammar.nonterminals
        }
        frontier = {
            nonterminal: backend.from_cells((n, n), dict(cells),
                                            symbol=nonterminal)
            for nonterminal, cells in support_seeds.items()
        }
        result = run_closure(matrices, solver._pair_rules, backend,
                             strategy=solver.strategy,
                             initial_frontier=frontier,
                             **solver.strategy_options)
        self._cells = {
            nonterminal: {(i, j): value
                          for i, j, value in matrix.nonzero_cells()}
            for nonterminal, matrix in result.matrices.items()
        }


def _make_support_store(mode: str):
    if mode not in SUPPORT_MODES:
        raise ValueError(
            f"unknown support_mode {mode!r}: expected one of {SUPPORT_MODES}")
    return TupleSupportIndex() if mode == "tuples" else CountingSupportIndex()


class IncrementalCFPQ:
    """A CFPQ solver whose graph can mutate after the initial solve.

    >>> solver = IncrementalCFPQ(graph, grammar)
    >>> solver.relations().pairs("S")
    >>> solver.add_edge("u", "a", "v")       # tuple-granular propagation
    >>> solver.add_edges(batch)              # matrix-granular batch
    >>> solver.remove_edges(batch)           # DRed delete + re-derive
    >>> solver.relations().pairs("S")        # always at the fixpoint

    All mutators return the number of facts that entered (``add_*``) or
    left (``remove_*``) the relations — the seeded base facts count,
    matching :class:`IncrementalSinglePathCFPQ`.

    After every mutator call :attr:`last_changes` holds the exact
    per-non-terminal delta of that call (the cells whose matrix content
    changed), which is what the query-service layer
    (:mod:`repro.service.query_service`) uses for fine-grained cache
    invalidation.

    *warm_state* (a mapping produced by :meth:`export_state`, typically
    via a snapshot — :mod:`repro.service.snapshot`) seeds the solver
    from an already-closed fact set instead of running the initial
    closure: construction is O(|facts|) and
    :attr:`initial_closure_iterations` is 0.
    """

    def __init__(self, graph: LabeledGraph, grammar: CFG,
                 backend: str = "pyset", strategy: str = "delta",
                 warm_state: "dict | None" = None,
                 support_mode: str | None = None,
                 **strategy_options):
        self.graph = graph
        self.grammar = ensure_cnf(grammar)
        self.backend = backend
        self.strategy = strategy
        self.strategy_options = strategy_options

        self._facts: dict[Nonterminal, set[tuple[int, int]]] = defaultdict(set)
        self._by_source: dict[tuple[Nonterminal, int], set[int]] = defaultdict(set)
        self._by_target: dict[tuple[Nonterminal, int], set[int]] = defaultdict(set)
        self._rules_by_left: dict[Nonterminal, list[tuple[Nonterminal, Nonterminal]]] = \
            defaultdict(list)
        self._rules_by_right: dict[Nonterminal, list[tuple[Nonterminal, Nonterminal]]] = \
            defaultdict(list)
        self._bodies_for_head: dict[Nonterminal, list[tuple[Nonterminal, Nonterminal]]] = \
            defaultdict(list)
        self._pair_rules: list[tuple[Nonterminal, Nonterminal, Nonterminal]] = []
        for rule in self.grammar.binary_rules:
            left, right = rule.body  # type: ignore[misc]
            self._rules_by_left[left].append((rule.head, right))   # type: ignore[index,arg-type]
            self._rules_by_right[right].append((rule.head, left))  # type: ignore[index,arg-type]
            self._bodies_for_head[rule.head].append((left, right))  # type: ignore[arg-type]
            self._pair_rules.append((rule.head, left, right))       # type: ignore[arg-type]
        self._terminals_for_head: dict[Nonterminal, list[str]] = defaultdict(list)
        for rule in self.grammar.terminal_rules:
            self._terminals_for_head[rule.head].append(rule.body[0].label)  # type: ignore[union-attr]
        self._nullable = self.grammar.nullable_diagonal

        #: DRed support index (counting matrices by default, tuple sets
        #: as the oracle).  Inactive until the first deletion:
        #: insertion-only workloads never build it.
        self.support_mode = support_mode if support_mode is not None \
            else _default_support_mode()
        self._support_store = _make_support_store(self.support_mode)

        self._edge_insertions = 0
        self._edge_removals = 0
        self._batch_updates = 0
        self._propagated_facts = 0
        self._facts_removed = 0

        #: Active per-call change recorder (None outside a mutator).
        self._change_recorder: dict[Nonterminal, set[tuple[int, int]]] | None = None
        self._last_changes: dict[Nonterminal, frozenset[tuple[int, int]]] = {}
        self._initial_iterations = 0

        if warm_state is not None:
            self._seed_from_state(warm_state)
        else:
            self._seed_from_engine(backend, strategy)
        # Keep the stats contract of the worklist-seeded version: every
        # initially derived fact counts as one propagation.
        self._propagated_facts = sum(
            len(pairs) for pairs in self._facts.values()
        )

    def _seed_from_engine(self, backend: str, strategy: str) -> None:
        """Initial solve: run the matrix closure engine to the fixpoint
        and seed the tuple-level indexes from the closed matrices.
        Annotated subclasses override this to seed from the semiring
        engine instead."""
        from .matrix_cfpq import solve_matrix

        result = solve_matrix(self.graph, self.grammar, backend=backend,
                              normalize=False, strategy=strategy,
                              **self.strategy_options)
        self._initial_iterations = result.stats.iterations
        for nonterminal, matrix in result.matrices.items():
            for i, j in matrix.nonzero_pairs():
                self._record(nonterminal, i, j)

    def _seed_from_state(self, state: dict) -> None:
        """Warm start: adopt an already-closed fact set (and, when
        present, the DRed support index) without running any closure."""
        for nonterminal, pairs in state.get("facts", {}).items():
            for i, j in pairs:
                self._record(nonterminal, i, j)
        supports = state.get("supports")
        if supports is not None:
            self._support_store.load(supports)

    def export_state(self) -> dict:
        """The solver's closed state as plain containers — the inverse
        of the ``warm_state`` constructor argument (used by the
        snapshot store)."""
        state: dict = {
            "facts": {
                nonterminal: set(pairs)
                for nonterminal, pairs in self._facts.items() if pairs
            },
        }
        supports = self._support_store.export()
        if supports is not None:
            state["supports"] = supports
        return state

    @property
    def _supports(self) -> dict[Fact, set[Support]] | None:
        """Read-only tuple-set view of the DRed support index (None
        until a deletion activates it) — the snapshot encoding and the
        differential tests consume this shape regardless of which store
        maintains the supports."""
        return self._support_store.export()

    # ------------------------------------------------------------------
    # Exact per-call deltas (cache-invalidation feed)
    # ------------------------------------------------------------------
    @property
    def last_changes(self) -> dict[Nonterminal, frozenset[tuple[int, int]]]:
        """The exact per-non-terminal cell delta of the most recent
        mutator call: for insertions the genuinely new facts (plus, on
        the single-path solver, cells whose length annotation was
        refined), for deletions the facts permanently removed plus cells
        re-derived with a different annotation.  Empty mapping when the
        last call changed nothing."""
        return self._last_changes

    @property
    def initial_closure_iterations(self) -> int:
        """Closure rounds run by the initial solve (0 after a warm
        start from ``warm_state``)."""
        return self._initial_iterations

    def _begin_change_log(self) -> None:
        self._change_recorder = {}

    def _commit_change_log(self) -> None:
        recorder = self._change_recorder or {}
        self._change_recorder = None
        self._last_changes = {
            nonterminal: frozenset(pairs)
            for nonterminal, pairs in recorder.items()
        }

    def _log_change(self, nonterminal: Nonterminal,
                    pair: tuple[int, int]) -> None:
        if self._change_recorder is not None:
            self._change_recorder.setdefault(nonterminal, set()).add(pair)

    # ------------------------------------------------------------------
    # Mutation: insertion
    # ------------------------------------------------------------------
    def add_edge(self, source: Hashable, label: str, target: Hashable) -> int:
        """Insert one edge and propagate its consequences at tuple
        granularity.

        Returns the number of **new facts** — seeded base facts,
        nullable-diagonal facts of freshly created nodes and everything
        derived from them (0 when the edge adds nothing, e.g. a
        duplicate).  Once deletion support is active the propagation
        additionally maintains the derivation supports, so single-edge
        inserts stay O(delta) instead of re-running the batch path.
        """
        self._begin_change_log()
        try:
            return self._add_edge(source, label, target)
        finally:
            self._commit_change_log()

    def _add_edge(self, source: Hashable, label: str, target: Hashable) -> int:
        store = self._support_store if self._support_store.active else None
        already_present = self.graph.has_edge(source, label, target)
        new_nodes = [node for node in dict.fromkeys((source, target))
                     if not self.graph.has_node(node)]
        self.graph.add_edge(source, label, target)
        self._edge_insertions += 1

        delta: deque[Fact] = deque()
        seeded = 0
        for node in new_nodes:
            node_id = self.graph.node_id(node)
            for head in self._nullable:
                if (node_id, node_id) not in self._facts[head]:
                    self._record(head, node_id, node_id)
                    delta.append((head, node_id, node_id))
                    seeded += 1
                    if store is not None:
                        store.seed_fact((head, node_id, node_id), ("empty",))
        if not already_present:
            i = self.graph.node_id(source)
            j = self.graph.node_id(target)
            for head in self.grammar.heads_for_terminal(Terminal(label)):
                if (i, j) not in self._facts[head]:
                    self._record(head, i, j)
                    delta.append((head, i, j))
                    seeded += 1
                    if store is not None:
                        store.seed_fact((head, i, j), ("edge", label))
                elif store is not None:
                    # The fact pre-exists: the fresh edge still becomes
                    # one of its derivation supports.
                    store.add_support((head, i, j), ("edge", label))
        return seeded + self._propagate(delta)

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Insert a batch of edges through the matrix-granular path.

        The batch is converted into per-non-terminal seed matrices (base
        facts of the new edges plus nullable diagonals of new nodes) and
        closed by one ``initial_frontier`` run of the configured closure
        strategy — no per-tuple worklist.  Returns the number of new
        facts.
        """
        self._begin_change_log()
        try:
            return self._add_edges(edges)
        finally:
            self._commit_change_log()

    def _add_edges(self, edges: Iterable[Edge]) -> int:
        edges = list(edges)
        nodes_before = self.graph.node_count
        new_edges: list[tuple[int, str, int]] = []
        for source, label, target in edges:
            self._edge_insertions += 1
            if self.graph.has_edge(source, label, target):
                continue
            self.graph.add_edge(source, label, target)
            new_edges.append((self.graph.node_id(source), label,
                              self.graph.node_id(target)))

        seeds: dict[Nonterminal, dict[tuple[int, int], object]] = {}
        support_seeds: dict[Nonterminal, dict[tuple[int, int], frozenset]] | None = (
            {} if self._support_store.active else None)
        for head in self._nullable:
            for i in range(nodes_before, self.graph.node_count):
                seeds.setdefault(head, {})[(i, i)] = self._diagonal_seed_value()
                if support_seeds is not None:
                    support_seeds.setdefault(head, {})[(i, i)] = \
                        SUPPORT_SEMIRING.empty_path()
        for i, label, j in new_edges:
            value = self._edge_seed_value(label)
            for head in self.grammar.heads_for_terminal(Terminal(label)):
                seeds.setdefault(head, {}).setdefault((i, j), value)
                if support_seeds is not None:
                    cells = support_seeds.setdefault(head, {})
                    support_value = SUPPORT_SEMIRING.identity(label)
                    existing = cells.get((i, j))
                    cells[(i, j)] = (
                        support_value if existing is None
                        else SUPPORT_SEMIRING.add(existing, support_value))
        if not seeds:
            return 0
        return self._run_batch(seeds, support_seeds)

    # ------------------------------------------------------------------
    # Mutation: deletion (support-counted DRed)
    # ------------------------------------------------------------------
    def remove_edge(self, source: Hashable, label: str,
                    target: Hashable) -> int:
        """Remove one edge; returns the number of facts that left the
        relations (see :meth:`remove_edges`)."""
        return self.remove_edges([(source, label, target)])

    def remove_edges(self, edges: Iterable[Edge]) -> int:
        """Remove a batch of edges with delete-and-rederive.

        Phase 1 *over-deletes* the downward closure of every fact a
        removed edge supported (count-blind — sound even when facts
        support each other in cycles), discarding the invalidated
        supports along the way.  Phase 2 *re-derives*: over-deleted
        facts whose surviving supports are non-empty re-enter as the
        ``initial_frontier`` of one closure run, which restores every
        fact still derivable.  Returns the number of facts permanently
        removed from the relations.
        """
        store = self._support_store
        store.ensure(self)
        self._last_changes = {}

        worklist: deque[Fact] = deque()
        for source, label, target in edges:
            self._edge_removals += 1
            if not self.graph.remove_edge(source, label, target):
                continue
            i = self.graph.node_id(source)
            j = self.graph.node_id(target)
            for head in self.grammar.heads_for_terminal(Terminal(label)):
                fact = (head, i, j)
                store.discard(fact, ("edge", label))
                if (i, j) in self._facts.get(head, ()):
                    worklist.append(fact)

        # Phase 1: over-delete the downward closure, invalidating every
        # support an over-deleted fact provided.  The tuple indexes
        # still reflect the pre-deletion database, which is exactly the
        # over-approximation DRed's deletion phase needs.
        tracer = get_tracer()
        overdeleted: set[Fact] = set()
        with tracer.span("dred.overdelete") as phase_span:
            while worklist:
                fact = worklist.popleft()
                if fact in overdeleted:
                    continue
                overdeleted.add(fact)
                nonterminal, i, j = fact
                for head, right in self._rules_by_left.get(nonterminal, ()):
                    for k in self._by_source.get((right, j), ()):
                        consequence = (head, i, k)
                        store.discard(consequence,
                                      ("split", nonterminal, right, j))
                        if consequence not in overdeleted:
                            worklist.append(consequence)
                for head, left in self._rules_by_right.get(nonterminal, ()):
                    for k in self._by_target.get((left, i), ()):
                        consequence = (head, k, j)
                        store.discard(consequence,
                                      ("split", left, nonterminal, i))
                        if consequence not in overdeleted:
                            worklist.append(consequence)
            phase_span.set("overdeleted", len(overdeleted))

        if not overdeleted:
            return 0

        # Annotation values before the delete (single-path: lengths) so
        # re-derived facts whose annotation moved land in last_changes.
        annotation_snapshot = self._annotations_of(overdeleted)

        # Surviving supports of the over-deleted facts, captured before
        # their cells leave the support index: a surviving support means
        # the fact is one-step derivable from facts outside the
        # over-deleted set — exactly the re-derivation seeds.
        remaining_by_fact = {
            fact: store.supports_of(fact) for fact in overdeleted
        }
        for fact in overdeleted:
            nonterminal, i, j = fact
            self._facts[nonterminal].discard((i, j))
            self._by_source[(nonterminal, i)].discard(j)
            self._by_target[(nonterminal, j)].discard(i)
            self._on_fact_removed(fact)
            store.pop(fact)

        # Phase 2: re-derive from the survivors.
        with tracer.span("dred.rederive") as phase_span:
            seeds: dict[Nonterminal, dict[tuple[int, int], object]] = {}
            support_seeds: dict[Nonterminal, dict[tuple[int, int], frozenset]] = {}
            for fact, remaining in remaining_by_fact.items():
                if not remaining:
                    continue
                nonterminal, i, j = fact
                seeds.setdefault(nonterminal, {})[(i, j)] = \
                    self._rederive_seed_value(fact, remaining)
                support_seeds.setdefault(nonterminal, {})[(i, j)] = \
                    frozenset((entry, 1) for entry in remaining)
            phase_span.set("seeds", sum(len(cells)
                                        for cells in seeds.values()))
            if seeds:
                self._run_batch(seeds, support_seeds)

        removed = 0
        changes: dict[Nonterminal, set[tuple[int, int]]] = {}
        for fact in overdeleted:
            nonterminal, i, j = fact
            if (i, j) not in self._facts.get(nonterminal, ()):
                removed += 1
                changes.setdefault(nonterminal, set()).add((i, j))
            elif self._annotation_changed(fact, annotation_snapshot):
                changes.setdefault(nonterminal, set()).add((i, j))
        self._last_changes = {
            nonterminal: frozenset(pairs)
            for nonterminal, pairs in changes.items()
        }
        self._facts_removed += removed
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def relations(self) -> ContextFreeRelations:
        """The current relations ``R_A`` (always at fixpoint)."""
        return ContextFreeRelations(
            self.graph,
            {nt: set(self._facts.get(nt, ())) for nt in self.grammar.nonterminals},
        )

    def pairs(self, nonterminal: Nonterminal | str) -> frozenset[tuple[int, int]]:
        """``R_A`` as dense-id pairs."""
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        return frozenset(self._facts.get(nonterminal, ()))

    def targets_from(self, nonterminal: Nonterminal | str,
                     source: int) -> frozenset[int]:
        """The targets reachable from one source: ``{j : (source, j) ∈
        R_A}``.  One row of the by-source index — a membership probe
        never has to materialize (or copy) the full relation."""
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        return frozenset(self._by_source.get((nonterminal, source), ()))

    @property
    def stats(self) -> dict[str, int]:
        """Instrumentation: updates seen, facts propagated/removed, and
        the size of the DRed support index (0 until a deletion
        activates it)."""
        return {
            "edge_insertions": self._edge_insertions,
            "edge_removals": self._edge_removals,
            "batch_updates": self._batch_updates,
            "propagated_facts": self._propagated_facts,
            "facts_removed": self._facts_removed,
            "total_facts": sum(len(pairs) for pairs in self._facts.values()),
            "support_entries": self._support_store.entry_count(),
        }

    # ------------------------------------------------------------------
    # Batch engine (shared by add_edges and the re-derive phase)
    # ------------------------------------------------------------------
    def _run_batch(self, seeds: dict,
                   support_seeds: dict | None = None) -> int:
        """Close the current state with *seeds* as the initial frontier;
        absorb and return the number of facts that appeared.
        *support_seeds* (counting-semiring cell values parallel to
        *seeds*, built only while the support index is active) advances
        the DRed support store through the same frontier."""
        n = self.graph.node_count
        with get_tracer().span("frontier.run",
                               strategy=self.strategy) as span:
            matrices = self._matrices_from_state(n)
            result = run_closure(
                matrices, self._pair_rules, self._batch_backend(),
                strategy=self.strategy,
                initial_frontier=self._seed_matrices(n, seeds),
                **self.strategy_options)
            self._batch_updates += 1
            new_facts = self._absorb(result.matrices)
            span.set("new_facts", len(new_facts))
        self._propagated_facts += len(new_facts)
        self._support_store.after_batch(self, support_seeds, new_facts)
        return len(new_facts)

    def _batch_backend(self):
        from ..matrices.base import get_backend

        return get_backend(self.backend)

    def _matrices_from_state(self, n: int) -> dict:
        backend = self._batch_backend()
        return {
            nt: backend.from_pairs(n, self._facts.get(nt, ()))
            for nt in self.grammar.nonterminals
        }

    def _seed_matrices(self, n: int, seeds: dict) -> dict:
        backend = self._batch_backend()
        return {
            nt: backend.from_pairs(n, cells.keys())
            for nt, cells in seeds.items()
        }

    def _absorb(self, matrices: dict) -> list[Fact]:
        """Record the closed matrices into the tuple indexes; returns
        the facts that were not present before.  Index updates are
        bulk-grouped by row/column so absorbing a large batch costs set
        operations, not one ``_record`` call per fact."""
        new_facts: list[Fact] = []
        for nonterminal, matrix in matrices.items():
            known = self._facts[nonterminal]
            fresh = matrix.to_pair_set() - known
            if not fresh:
                continue
            known |= fresh
            self._index_pairs(nonterminal, fresh)
            if self._change_recorder is not None:
                self._change_recorder.setdefault(nonterminal, set()).update(fresh)
            new_facts.extend((nonterminal, i, j) for i, j in fresh)
        return new_facts

    def _index_pairs(self, nonterminal: Nonterminal,
                     pairs: Iterable[tuple[int, int]]) -> None:
        rows: dict[int, list[int]] = {}
        cols: dict[int, list[int]] = {}
        for i, j in pairs:
            rows.setdefault(i, []).append(j)
            cols.setdefault(j, []).append(i)
        for i, targets in rows.items():
            self._by_source[(nonterminal, i)].update(targets)
        for j, sources in cols.items():
            self._by_target[(nonterminal, j)].update(sources)

    def _edge_seed_value(self, label: str):
        return True

    def _diagonal_seed_value(self):
        return True

    def _rederive_seed_value(self, fact: Fact, remaining: set):
        return True

    def _on_fact_removed(self, fact: Fact) -> None:
        """Hook for annotated subclasses (drop per-fact annotations)."""

    def _annotations_of(self, facts: set[Fact]) -> dict:
        """Pre-deletion annotation values of *facts* (empty for the
        presence-only base solver — re-derived boolean cells cannot
        change value)."""
        return {}

    def _annotation_changed(self, fact: Fact, snapshot: dict) -> bool:
        """Did the DRed pass leave *fact* present with a different
        annotation than *snapshot* recorded?"""
        return False

    # ------------------------------------------------------------------
    # Tuple-granular engine
    # ------------------------------------------------------------------
    def _record(self, nonterminal: Nonterminal, i: int, j: int) -> None:
        self._facts[nonterminal].add((i, j))
        self._by_source[(nonterminal, i)].add(j)
        self._by_target[(nonterminal, j)].add(i)
        self._log_change(nonterminal, (i, j))

    def _propagate(self, worklist: deque[Fact]) -> int:
        """Tuple-granular consequence propagation.

        With the DRed support index active, every enumerated one-step
        derivation is registered as a support of its consequence —
        including consequences that already exist, which is what keeps
        the index exact (every derivation of a delta fact involves at
        least one delta operand, and each such combination is
        enumerated when that operand pops)."""
        store = self._support_store if self._support_store.active else None
        derived = 0
        while worklist:
            nonterminal, i, j = worklist.popleft()
            self._propagated_facts += 1
            for head, right in self._rules_by_left.get(nonterminal, ()):
                for k in list(self._by_source.get((right, j), ())):
                    if (i, k) not in self._facts[head]:
                        self._record(head, i, k)
                        worklist.append((head, i, k))
                        derived += 1
                        if store is not None:
                            store.seed_fact((head, i, k),
                                            ("split", nonterminal, right, j))
                    elif store is not None:
                        store.add_support((head, i, k),
                                          ("split", nonterminal, right, j))
            for head, left in self._rules_by_right.get(nonterminal, ()):
                for k in list(self._by_target.get((left, i), ())):
                    if (k, j) not in self._facts[head]:
                        self._record(head, k, j)
                        worklist.append((head, k, j))
                        derived += 1
                        if store is not None:
                            store.seed_fact((head, k, j),
                                            ("split", left, nonterminal, i))
                    elif store is not None:
                        store.add_support((head, k, j),
                                          ("split", left, nonterminal, i))
        return derived


class IncrementalSinglePathCFPQ(IncrementalCFPQ):
    """Incremental solver that also maintains Section-5 witness lengths.

    The initial solve seeds both the relational facts *and* their
    length annotations from the semiring-generalized closure engine
    (:func:`repro.core.semiring.solve_annotated` over the length
    semiring) — the same engine :func:`~repro.core.single_path.build_single_path_index`
    runs — so the starting annotation is the canonical minimal witness
    length per fact.

    * :meth:`add_edge` propagates at tuple granularity with the min-merge
      rule: a fact whose recorded length *improves* re-enters the
      worklist.
    * :meth:`add_edges` runs the batch closure over the length-semiring
      matrix adapter, whose ``union_update`` feeds refinements back into
      the semi-naive frontier.
    * :meth:`remove_edges` (inherited DRed) drops the lengths of the
      over-deleted facts and recomputes the affected submatrix from the
      surviving canonical lengths — survivors outside the downward
      closure cannot change, so their annotations are reused as-is.

    ``length_of`` therefore equals a from-scratch
    :class:`~repro.core.single_path.SinglePathIndex` after every
    insertion and deletion (property-tested).
    """

    def __init__(self, graph: LabeledGraph, grammar: CFG,
                 strategy: str = "delta",
                 warm_state: "dict | None" = None,
                 **strategy_options):
        self._lengths: dict[Fact, int] = {}
        super().__init__(graph, grammar, strategy=strategy,
                         warm_state=warm_state, **strategy_options)

    def _seed_from_engine(self, backend: str, strategy: str) -> None:
        from .semiring import LENGTH_SEMIRING, solve_annotated

        result = solve_annotated(self.graph, self.grammar, LENGTH_SEMIRING,
                                 strategy=strategy, normalize=False,
                                 **self.strategy_options)
        self._initial_iterations = result.iterations
        for nonterminal, matrix in result.matrices.items():
            for i, j, length in matrix.nonzero_cells():
                self._record(nonterminal, i, j)
                self._lengths[(nonterminal, i, j)] = length

    def _seed_from_state(self, state: dict) -> None:
        super()._seed_from_state(state)
        self._lengths.update(state.get("lengths", {}))

    def export_state(self) -> dict:
        state = super().export_state()
        state["lengths"] = dict(self._lengths)
        return state

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def single_path_index(self):
        """The maintained lengths as a
        :class:`~repro.core.single_path.SinglePathIndex`, so
        :func:`~repro.core.single_path.extract_path` runs on the live
        incremental state (the query service rebuilds this after every
        update tick)."""
        from .single_path import SinglePathIndex

        cells: dict[tuple[int, int], dict] = {}
        for (nonterminal, i, j), length in self._lengths.items():
            cells.setdefault((i, j), {})[nonterminal] = length
        return SinglePathIndex(graph=self.graph, grammar=self.grammar,
                               cells=cells, iterations=0)

    def length_of(self, nonterminal: Nonterminal | str, source: Hashable,
                  target: Hashable) -> int | None:
        """The maintained witness length for ``(A, source, target)``, or
        None when the pair is not in ``R_A``."""
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        return self._lengths.get(
            (nonterminal, self.graph.node_id(source),
             self.graph.node_id(target))
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _add_edge(self, source: Hashable, label: str, target: Hashable) -> int:
        """Insert one edge; returns the number of new facts (length
        refinements of existing facts propagate but are not counted,
        matching the base-class contract)."""
        store = self._support_store if self._support_store.active else None
        already_present = self.graph.has_edge(source, label, target)
        new_nodes = [node for node in dict.fromkeys((source, target))
                     if not self.graph.has_node(node)]
        self.graph.add_edge(source, label, target)
        self._edge_insertions += 1

        worklist: deque[Fact] = deque()
        created = 0
        for node in new_nodes:
            node_id = self.graph.node_id(node)
            for head in self._nullable:
                added, improved = self._improve(head, node_id, node_id, 0)
                if added:
                    created += 1
                    if store is not None:
                        store.seed_fact((head, node_id, node_id), ("empty",))
                if added or improved:
                    worklist.append((head, node_id, node_id))
        if not already_present:
            i = self.graph.node_id(source)
            j = self.graph.node_id(target)
            for head in self.grammar.heads_for_terminal(Terminal(label)):
                added, improved = self._improve(head, i, j, 1)
                if added:
                    created += 1
                    if store is not None:
                        store.seed_fact((head, i, j), ("edge", label))
                elif store is not None:
                    store.add_support((head, i, j), ("edge", label))
                if added or improved:
                    worklist.append((head, i, j))
        return created + self._propagate_lengths(worklist)

    # ------------------------------------------------------------------
    # Batch hooks
    # ------------------------------------------------------------------
    def _batch_backend(self):
        from .semiring import LENGTH_SEMIRING, AnnotatedBackend

        return AnnotatedBackend(LENGTH_SEMIRING)

    def _matrices_from_state(self, n: int) -> dict:
        backend = self._batch_backend()
        return {
            nt: backend.from_cells(
                (n, n),
                {(i, j): self._lengths[(nt, i, j)]
                 for (i, j) in self._facts.get(nt, ())},
                symbol=nt,
            )
            for nt in self.grammar.nonterminals
        }

    def _seed_matrices(self, n: int, seeds: dict) -> dict:
        backend = self._batch_backend()
        return {
            nt: backend.from_cells((n, n), cells, symbol=nt)
            for nt, cells in seeds.items()
        }

    def _absorb(self, matrices: dict) -> list[Fact]:
        new_facts: list[Fact] = []
        lengths = self._lengths
        for nonterminal, matrix in matrices.items():
            known = self._facts[nonterminal]
            fresh: list[tuple[int, int]] = []
            for i, j, length in matrix.nonzero_cells():
                previous = lengths.get((nonterminal, i, j))
                lengths[(nonterminal, i, j)] = length
                if (i, j) not in known:
                    fresh.append((i, j))
                elif previous != length:
                    # Length refinement of an existing fact: the matrix
                    # content changed even though the relation did not.
                    self._log_change(nonterminal, (i, j))
            if not fresh:
                continue
            known.update(fresh)
            self._index_pairs(nonterminal, fresh)
            if self._change_recorder is not None:
                self._change_recorder.setdefault(nonterminal, set()).update(fresh)
            new_facts.extend((nonterminal, i, j) for i, j in fresh)
        return new_facts

    def _edge_seed_value(self, label: str) -> int:
        return 1

    def _diagonal_seed_value(self) -> int:
        return 0

    def _rederive_seed_value(self, fact: Fact, remaining: set) -> int:
        """Min length over the surviving one-step derivations — their
        operands are all survivors, so their canonical lengths are
        available; the closure run then refines downward if a shorter
        route re-appears through other re-derived facts."""
        _nonterminal, i, j = fact
        best: int | None = None
        for support in remaining:
            if support[0] == "empty":
                candidate = 0
            elif support[0] == "edge":
                candidate = 1
            else:
                _tag, left, right, r = support
                left_length = self._lengths.get((left, i, r))
                right_length = self._lengths.get((right, r, j))
                if left_length is None or right_length is None:
                    continue
                candidate = left_length + right_length
            if best is None or candidate < best:
                best = candidate
        assert best is not None, "re-derivation seed without usable support"
        return best

    def _on_fact_removed(self, fact: Fact) -> None:
        self._lengths.pop(fact, None)

    def _annotations_of(self, facts: set[Fact]) -> dict:
        return {fact: self._lengths.get(fact) for fact in facts}

    def _annotation_changed(self, fact: Fact, snapshot: dict) -> bool:
        return self._lengths.get(fact) != snapshot.get(fact)

    # ------------------------------------------------------------------
    # Tuple-granular engine
    # ------------------------------------------------------------------
    def _improve(self, nonterminal: Nonterminal, i: int, j: int,
                 length: int) -> tuple[bool, bool]:
        """Record/refine one length; returns ``(added, improved)``."""
        key = (nonterminal, i, j)
        current = self._lengths.get(key)
        if current is None:
            self._record(nonterminal, i, j)
            self._lengths[key] = length
            return True, False
        if length < current:
            self._lengths[key] = length
            self._log_change(nonterminal, (i, j))
            return False, True
        return False, False

    def _propagate_lengths(self, worklist: deque[Fact]) -> int:
        store = self._support_store if self._support_store.active else None
        created = 0
        while worklist:
            nonterminal, i, j = worklist.popleft()
            self._propagated_facts += 1
            base = self._lengths[(nonterminal, i, j)]
            for head, right in self._rules_by_left.get(nonterminal, ()):
                for k in list(self._by_source.get((right, j), ())):
                    other = self._lengths.get((right, j, k))
                    if other is None:
                        continue
                    added, improved = self._improve(head, i, k, base + other)
                    if added:
                        created += 1
                        if store is not None:
                            store.seed_fact((head, i, k),
                                            ("split", nonterminal, right, j))
                    elif store is not None:
                        store.add_support((head, i, k),
                                          ("split", nonterminal, right, j))
                    if added or improved:
                        worklist.append((head, i, k))
            for head, left in self._rules_by_right.get(nonterminal, ()):
                for k in list(self._by_target.get((left, i), ())):
                    other = self._lengths.get((left, k, i))
                    if other is None:
                        continue
                    added, improved = self._improve(head, k, j, other + base)
                    if added:
                        created += 1
                        if store is not None:
                            store.seed_fact((head, k, j),
                                            ("split", left, nonterminal, i))
                    elif store is not None:
                        store.add_support((head, k, j),
                                          ("split", left, nonterminal, i))
                    if added or improved:
                        worklist.append((head, k, j))
        return created
