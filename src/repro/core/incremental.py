"""Incremental CFPQ: maintaining relations under edge insertions.

Graph databases mutate; recomputing the whole closure per inserted edge
wastes the work already done.  Because Algorithm 1's fixpoint is a
*monotone* least fixpoint (Theorem 3's argument: facts are only ever
added), the closure supports **semi-naive delta propagation**: after an
initial solve, inserting edge ``(u, x, v)`` seeds the worklist with the
new base facts ``{(A, u, v) | (A → x) ∈ P}`` and propagates only their
consequences through the pair rules — exactly the Hellings step, but
started from the delta instead of from scratch.

This realizes the dynamic-graph direction implied by the paper's
"graph databases" motivation, and it doubles as yet another
differential-testing angle: after any insertion sequence the
incremental state must equal a from-scratch solve (property-tested in
``tests/core/test_incremental.py``).

The *initial* solve routes through the matrix closure engine
(:mod:`repro.core.closure`, ``delta`` strategy) — the same semi-naive
idea at matrix granularity — and only per-edge propagation afterwards
runs at tuple granularity.

Deletions are *not* supported: under deletion the fixpoint is no longer
monotone and requires support counting; ``remove_edge`` raises to make
the contract explicit.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Hashable

from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import LabeledGraph
from .relations import ContextFreeRelations


class IncrementalCFPQ:
    """A CFPQ solver whose graph can grow after the initial solve.

    >>> solver = IncrementalCFPQ(graph, grammar)
    >>> solver.relations().pairs("S")
    >>> solver.add_edge("u", "a", "v")      # propagates incrementally
    >>> solver.relations().pairs("S")       # updated answer
    """

    def __init__(self, graph: LabeledGraph, grammar: CFG,
                 backend: str = "pyset", strategy: str = "delta"):
        self.graph = graph
        self.grammar = ensure_cnf(grammar)

        self._facts: dict[Nonterminal, set[tuple[int, int]]] = defaultdict(set)
        self._by_source: dict[tuple[Nonterminal, int], set[int]] = defaultdict(set)
        self._by_target: dict[tuple[Nonterminal, int], set[int]] = defaultdict(set)
        self._rules_by_left: dict[Nonterminal, list[tuple[Nonterminal, Nonterminal]]] = \
            defaultdict(list)
        self._rules_by_right: dict[Nonterminal, list[tuple[Nonterminal, Nonterminal]]] = \
            defaultdict(list)
        for rule in self.grammar.binary_rules:
            left, right = rule.body  # type: ignore[misc]
            self._rules_by_left[left].append((rule.head, right))   # type: ignore[index,arg-type]
            self._rules_by_right[right].append((rule.head, left))  # type: ignore[index,arg-type]

        self._edge_insertions = 0
        self._propagated_facts = 0

        self._seed_from_engine(backend, strategy)
        # Keep the stats contract of the worklist-seeded version: every
        # initially derived fact counts as one propagation.
        self._propagated_facts = sum(
            len(pairs) for pairs in self._facts.values()
        )

    def _seed_from_engine(self, backend: str, strategy: str) -> None:
        """Initial solve: run the matrix closure engine to the fixpoint
        and seed the tuple-level indexes from the closed matrices.
        Annotated subclasses override this to seed from the semiring
        engine instead."""
        from .matrix_cfpq import solve_matrix

        result = solve_matrix(self.graph, self.grammar, backend=backend,
                              normalize=False, strategy=strategy)
        for nonterminal, matrix in result.matrices.items():
            for i, j in matrix.nonzero_pairs():
                self._record(nonterminal, i, j)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, source: Hashable, label: str, target: Hashable) -> int:
        """Insert an edge and propagate its consequences.

        Returns the number of *new* derived facts (0 when the edge adds
        nothing, e.g. a duplicate).
        """
        already_present = self.graph.has_edge(source, label, target)
        self.graph.add_edge(source, label, target)
        self._edge_insertions += 1
        if already_present:
            return 0

        i = self.graph.node_id(source)
        j = self.graph.node_id(target)
        delta: deque[tuple[Nonterminal, int, int]] = deque()
        for head in self.grammar.heads_for_terminal(Terminal(label)):
            if (i, j) not in self._facts[head]:
                self._record(head, i, j)
                delta.append((head, i, j))
        return self._propagate(delta)

    def remove_edge(self, source: Hashable, label: str,
                    target: Hashable) -> None:
        """Deletions break fixpoint monotonicity; not supported."""
        raise NotImplementedError(
            "incremental deletion requires support counting; re-build the "
            "solver instead"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def relations(self) -> ContextFreeRelations:
        """The current relations ``R_A`` (always at fixpoint)."""
        return ContextFreeRelations(
            self.graph,
            {nt: set(self._facts.get(nt, ())) for nt in self.grammar.nonterminals},
        )

    def pairs(self, nonterminal: Nonterminal | str) -> frozenset[tuple[int, int]]:
        """``R_A`` as dense-id pairs."""
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        return frozenset(self._facts.get(nonterminal, ()))

    @property
    def stats(self) -> dict[str, int]:
        """Instrumentation: insertions seen, facts propagated in total."""
        return {
            "edge_insertions": self._edge_insertions,
            "propagated_facts": self._propagated_facts,
            "total_facts": sum(len(pairs) for pairs in self._facts.values()),
        }

    # ------------------------------------------------------------------
    # Engine
    # ------------------------------------------------------------------
    def _record(self, nonterminal: Nonterminal, i: int, j: int) -> None:
        self._facts[nonterminal].add((i, j))
        self._by_source[(nonterminal, i)].add(j)
        self._by_target[(nonterminal, j)].add(i)

    def _propagate(self, worklist: deque[tuple[Nonterminal, int, int]]) -> int:
        derived = 0
        while worklist:
            nonterminal, i, j = worklist.popleft()
            self._propagated_facts += 1
            for head, right in self._rules_by_left.get(nonterminal, ()):
                for k in list(self._by_source.get((right, j), ())):
                    if (i, k) not in self._facts[head]:
                        self._record(head, i, k)
                        worklist.append((head, i, k))
                        derived += 1
            for head, left in self._rules_by_right.get(nonterminal, ()):
                for k in list(self._by_target.get((left, i), ())):
                    if (k, j) not in self._facts[head]:
                        self._record(head, k, j)
                        worklist.append((head, k, j))
                        derived += 1
        return derived


class IncrementalSinglePathCFPQ(IncrementalCFPQ):
    """Incremental solver that also maintains Section-5 witness lengths.

    The initial solve seeds both the relational facts *and* their
    length annotations from the semiring-generalized closure engine
    (:func:`repro.core.semiring.solve_annotated` over the length
    semiring) — the same engine :func:`~repro.core.single_path.build_single_path_index`
    runs — so the starting annotation is the canonical minimal witness
    length per fact.  Edge insertions propagate at tuple granularity
    with the same min-merge rule: a new edge contributes length-1 base
    facts, and any fact whose recorded length *improves* re-enters the
    worklist, keeping ``length_of`` equal to a from-scratch
    :class:`~repro.core.single_path.SinglePathIndex` after every
    insertion (property-tested).
    """

    def __init__(self, graph: LabeledGraph, grammar: CFG,
                 strategy: str = "delta"):
        self._lengths: dict[tuple[Nonterminal, int, int], int] = {}
        super().__init__(graph, grammar, strategy=strategy)

    def _seed_from_engine(self, backend: str, strategy: str) -> None:
        from .semiring import LENGTH_SEMIRING, solve_annotated

        result = solve_annotated(self.graph, self.grammar, LENGTH_SEMIRING,
                                 strategy=strategy, normalize=False)
        for nonterminal, matrix in result.matrices.items():
            for i, j, length in matrix.nonzero_cells():
                self._record(nonterminal, i, j)
                self._lengths[(nonterminal, i, j)] = length

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def length_of(self, nonterminal: Nonterminal | str, source: Hashable,
                  target: Hashable) -> int | None:
        """The maintained witness length for ``(A, source, target)``, or
        None when the pair is not in ``R_A``."""
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        return self._lengths.get(
            (nonterminal, self.graph.node_id(source),
             self.graph.node_id(target))
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, source: Hashable, label: str, target: Hashable) -> int:
        """Insert an edge; returns the number of facts added *or whose
        recorded length improved*."""
        already_present = self.graph.has_edge(source, label, target)
        self.graph.add_edge(source, label, target)
        self._edge_insertions += 1
        if already_present:
            return 0

        i = self.graph.node_id(source)
        j = self.graph.node_id(target)
        worklist: deque[tuple[Nonterminal, int, int]] = deque()
        changed = 0
        for head in self.grammar.heads_for_terminal(Terminal(label)):
            if self._improve(head, i, j, 1):
                worklist.append((head, i, j))
                changed += 1
        return changed + self._propagate_lengths(worklist)

    # ------------------------------------------------------------------
    # Engine
    # ------------------------------------------------------------------
    def _improve(self, nonterminal: Nonterminal, i: int, j: int,
                 length: int) -> bool:
        key = (nonterminal, i, j)
        current = self._lengths.get(key)
        if current is None:
            self._record(nonterminal, i, j)
            self._lengths[key] = length
            return True
        if length < current:
            self._lengths[key] = length
            return True
        return False

    def _propagate_lengths(self, worklist: deque[tuple[Nonterminal, int, int]],
                           ) -> int:
        changed = 0
        while worklist:
            nonterminal, i, j = worklist.popleft()
            self._propagated_facts += 1
            base = self._lengths[(nonterminal, i, j)]
            for head, right in self._rules_by_left.get(nonterminal, ()):
                for k in list(self._by_source.get((right, j), ())):
                    candidate = base + self._lengths[(right, j, k)]
                    if self._improve(head, i, k, candidate):
                        worklist.append((head, i, k))
                        changed += 1
            for head, left in self._rules_by_right.get(nonterminal, ()):
                for k in list(self._by_target.get((left, i), ())):
                    candidate = self._lengths[(left, k, i)] + base
                    if self._improve(head, k, j, candidate):
                        worklist.append((head, k, j))
                        changed += 1
        return changed
