"""Conjunctive-grammar extension (paper §7 future work).

The paper observes that Algorithm 1 "can be trivially generalized" to
conjunctive grammars (rules whose body is a *conjunction* of concatenations,
``A → B C & D E``), because conjunctive parsing is also expressible by
matrix multiplication (Okhotin [19]); since conjunctive path querying is
undecidable [11], the result is hypothesised to be an **upper
approximation** of the true relation.  We implement exactly that:

* :class:`ConjunctiveGrammar` — CNF-style conjunctive rules
  ``A → (B1 C1) & (B2 C2) & ...`` plus terminal rules ``A → x``;
* :func:`solve_conjunctive_approx` — the fixpoint
  ``M_A ← M_A ∪ ⋂_conjuncts (M_B × M_C)`` (intersection of the boolean
  products across conjuncts, union into the accumulator), routed
  through the shared closure engine: one auxiliary head per (rule,
  conjunct) keeps each conjunct's product current under any registered
  strategy (semi-naive deltas, blocked tiles, autotune), and the outer
  loop only intersects the aux matrices and feeds new head cells back
  as an ``initial_frontier``;
* :func:`solve_conjunctive_reference` — the original direct
  while-changed loop, kept as the differential-test oracle;
* the guarantee tests verify *soundness of the approximation*: every
  pair in the true conjunctive relation (checked by bounded-path
  enumeration) is present in the approximation.

Boolean grammars with negation are out of scope here (negation breaks
the monotone fixpoint); conjunction alone already exceeds context-free
power — e.g. ``{aⁿbⁿcⁿ}`` — and demonstrates the extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import LabeledGraph
from ..matrices.base import BooleanMatrix, MatrixBackend, get_backend
from .relations import ContextFreeRelations


@dataclass(frozen=True)
class ConjunctiveRule:
    """``head → (B1 C1) & (B2 C2) & ...`` — at least one conjunct."""

    head: Nonterminal
    conjuncts: tuple[tuple[Nonterminal, Nonterminal], ...]

    def __post_init__(self) -> None:
        if not self.conjuncts:
            raise ValueError("a conjunctive rule needs at least one conjunct")

    def __str__(self) -> str:
        body = " & ".join(f"{b} {c}" for b, c in self.conjuncts)
        return f"{self.head} -> {body}"


@dataclass(frozen=True)
class TerminalRule:
    """``head → x``."""

    head: Nonterminal
    terminal: Terminal

    def __str__(self) -> str:
        return f"{self.head} -> {self.terminal}"


class ConjunctiveGrammar:
    """A conjunctive grammar in binary normal form."""

    def __init__(self, rules: Iterable[ConjunctiveRule | TerminalRule]):
        self.conjunctive_rules: list[ConjunctiveRule] = []
        self.terminal_rules: list[TerminalRule] = []
        nonterminals: set[Nonterminal] = set()
        for rule in rules:
            if isinstance(rule, ConjunctiveRule):
                self.conjunctive_rules.append(rule)
                nonterminals.add(rule.head)
                for b, c in rule.conjuncts:
                    nonterminals.update((b, c))
            elif isinstance(rule, TerminalRule):
                self.terminal_rules.append(rule)
                nonterminals.add(rule.head)
            else:
                raise TypeError(f"unsupported rule {rule!r}")
        self.nonterminals = frozenset(nonterminals)

    @classmethod
    def parse(cls, text: str, terminals: Sequence[str]) -> "ConjunctiveGrammar":
        """Parse lines like ``A -> B C & D E`` / ``A -> x``; heads and
        symbols are whitespace-separated, conjuncts ``&``-separated."""
        terminal_names = set(terminals)
        rules: list[ConjunctiveRule | TerminalRule] = []
        for raw_line in text.splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            head_text, _arrow, body_text = line.partition("->")
            head = Nonterminal(head_text.strip())
            conjunct_texts = [part.split() for part in body_text.split("&")]
            if len(conjunct_texts) == 1 and len(conjunct_texts[0]) == 1:
                name = conjunct_texts[0][0]
                if name in terminal_names:
                    rules.append(TerminalRule(head, Terminal(name)))
                    continue
            conjuncts = []
            for tokens in conjunct_texts:
                if len(tokens) != 2:
                    raise ValueError(
                        f"conjunct must be two non-terminals, got {tokens!r}"
                    )
                conjuncts.append((Nonterminal(tokens[0]), Nonterminal(tokens[1])))
            rules.append(ConjunctiveRule(head, tuple(conjuncts)))
        return cls(rules)


def _intersect(left: BooleanMatrix, right: BooleanMatrix,
               backend: MatrixBackend) -> BooleanMatrix:
    """Element-wise AND via pair-set intersection (backend-agnostic)."""
    pairs = left.to_pair_set() & right.to_pair_set()
    return backend.from_pairs(left.shape[0], pairs, cols=left.shape[1])


def _seed_terminal_matrices(graph: LabeledGraph,
                            grammar: ConjunctiveGrammar,
                            backend: MatrixBackend,
                            ) -> dict[Nonterminal, BooleanMatrix]:
    n = graph.node_count
    matrices: dict[Nonterminal, BooleanMatrix] = {
        nt: backend.zeros(n) for nt in grammar.nonterminals
    }
    for rule in grammar.terminal_rules:
        pairs = graph.edge_pairs(rule.terminal.label)
        if pairs:
            matrices[rule.head] = matrices[rule.head].union(
                backend.from_pairs(n, pairs)
            )
    return matrices


def solve_conjunctive_approx(graph: LabeledGraph, grammar: ConjunctiveGrammar,
                             backend: "str | MatrixBackend" = "sparse",
                             strategy: "str | None" = None,
                             **strategy_options) -> ContextFreeRelations:
    """Fixpoint of the conjunctive closure — the paper's hypothesised
    upper approximation of the (undecidable) exact relation — on the
    shared closure engine.

    Every (rule, conjunct) gets an auxiliary head with the pair rule
    ``aux → B C``, so :func:`repro.core.closure.run_closure` keeps each
    aux matrix equal to the *current* boolean product of its operands
    (products are monotone in their operands, so accumulated union over
    rounds equals the latest product).  Conjunction is not a semiring
    product, so the intersection across a rule's aux matrices and the
    union into the real head stay in an outer loop; the head's genuinely
    new cells re-enter the next engine run as an ``initial_frontier``,
    exactly like a batch-incremental insertion.  The fixpoint is the
    same least fixpoint :func:`solve_conjunctive_reference` reaches —
    the differential tests assert it per strategy × backend.
    """
    from .closure import run_closure
    from .matrix_cfpq import DEFAULT_STRATEGY

    backend_obj = get_backend(backend)
    n = graph.node_count
    matrices = _seed_terminal_matrices(graph, grammar, backend_obj)

    def fresh(base: str) -> Nonterminal:
        name = base
        while Nonterminal(name) in grammar.nonterminals:
            name = "_" + name
        return Nonterminal(name)

    pair_rules: list[tuple[Nonterminal, Nonterminal, Nonterminal]] = []
    rule_aux: list[tuple[ConjunctiveRule, list[Nonterminal]]] = []
    for index, rule in enumerate(grammar.conjunctive_rules):
        aux_heads: list[Nonterminal] = []
        for position, (left, right) in enumerate(rule.conjuncts):
            aux = fresh(f"__conj{index}_{position}")
            matrices[aux] = backend_obj.zeros(n)
            pair_rules.append((aux, left, right))
            aux_heads.append(aux)
        rule_aux.append((rule, aux_heads))
    aux_set = {aux for _rule, heads in rule_aux for aux in heads}

    strategy = strategy or DEFAULT_STRATEGY
    frontier: "dict | None" = None  # first run: full seed frontier
    while True:
        run_closure(matrices, pair_rules, backend_obj, strategy=strategy,
                    initial_frontier=frontier, **strategy_options)
        frontier = {}
        for rule, aux_heads in rule_aux:
            contribution = matrices[aux_heads[0]]
            for aux in aux_heads[1:]:
                contribution = _intersect(contribution, matrices[aux],
                                          backend_obj)
            delta = contribution.difference(matrices[rule.head])
            if delta.nnz():
                existing = frontier.get(rule.head)
                frontier[rule.head] = (delta if existing is None
                                       else existing.union(delta))
        if not frontier:
            break

    return ContextFreeRelations(
        graph, {nt: matrix.to_pair_set() for nt, matrix in matrices.items()
                if nt not in aux_set}
    )


def solve_conjunctive_reference(graph: LabeledGraph,
                                grammar: ConjunctiveGrammar,
                                backend: "str | MatrixBackend" = "sparse",
                                ) -> ContextFreeRelations:
    """The original direct fixpoint loop, kept as the oracle for the
    engine-routed :func:`solve_conjunctive_approx`.

    Each sweep computes, for every rule, the *intersection over
    conjuncts* of the boolean products, then unions the result into the
    head's matrix; sweeps repeat until no matrix grows.
    """
    backend_obj = get_backend(backend)
    matrices = _seed_terminal_matrices(graph, grammar, backend_obj)

    changed = True
    while changed:
        changed = False
        for rule in grammar.conjunctive_rules:
            contribution: BooleanMatrix | None = None
            for left, right in rule.conjuncts:
                product = matrices[left].multiply(matrices[right])
                contribution = (
                    product if contribution is None
                    else _intersect(contribution, product, backend_obj)
                )
            assert contribution is not None
            updated = matrices[rule.head].union(contribution)
            if updated.nnz() != matrices[rule.head].nnz():
                matrices[rule.head] = updated
                changed = True

    return ContextFreeRelations(
        graph, {nt: matrix.to_pair_set() for nt, matrix in matrices.items()}
    )


def anbncn_grammar() -> ConjunctiveGrammar:
    """The canonical non-context-free conjunctive language
    ``{aⁿ bⁿ cⁿ | n ≥ 1}`` in binary conjunctive normal form:

    ``S → (X C') & (A' Y)`` where ``X`` derives ``aⁿbⁿ``, ``Y`` derives
    ``bⁿcⁿ``, ``A'`` runs of a, ``C'`` runs of c.
    """
    return ConjunctiveGrammar.parse(
        """
        S  -> X Cs & As Y
        X  -> A Xb
        X  -> A B
        Xb -> X B
        Y  -> B Yc
        Y  -> B C
        Yc -> Y C
        As -> a
        As -> A As
        Cs -> c
        Cs -> C Cs
        A  -> a
        B  -> b
        C  -> c
        """,
        terminals=["a", "b", "c"],
    )
