"""Conjunctive-grammar extension (paper §7 future work).

The paper observes that Algorithm 1 "can be trivially generalized" to
conjunctive grammars (rules whose body is a *conjunction* of concatenations,
``A → B C & D E``), because conjunctive parsing is also expressible by
matrix multiplication (Okhotin [19]); since conjunctive path querying is
undecidable [11], the result is hypothesised to be an **upper
approximation** of the true relation.  We implement exactly that:

* :class:`ConjunctiveGrammar` — CNF-style conjunctive rules
  ``A → (B1 C1) & (B2 C2) & ...`` plus terminal rules ``A → x``;
* :func:`solve_conjunctive_approx` — the fixpoint
  ``M_A ← M_A ∪ ⋂_conjuncts (M_B × M_C)`` (intersection of the boolean
  products across conjuncts, union into the accumulator);
* the guarantee tests verify *soundness of the approximation*: every
  pair in the true conjunctive relation (checked by bounded-path
  enumeration) is present in the approximation.

Boolean grammars with negation are out of scope here (negation breaks
the monotone fixpoint); conjunction alone already exceeds context-free
power — e.g. ``{aⁿbⁿcⁿ}`` — and demonstrates the extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import LabeledGraph
from ..matrices.base import BooleanMatrix, MatrixBackend, get_backend
from .relations import ContextFreeRelations


@dataclass(frozen=True)
class ConjunctiveRule:
    """``head → (B1 C1) & (B2 C2) & ...`` — at least one conjunct."""

    head: Nonterminal
    conjuncts: tuple[tuple[Nonterminal, Nonterminal], ...]

    def __post_init__(self) -> None:
        if not self.conjuncts:
            raise ValueError("a conjunctive rule needs at least one conjunct")

    def __str__(self) -> str:
        body = " & ".join(f"{b} {c}" for b, c in self.conjuncts)
        return f"{self.head} -> {body}"


@dataclass(frozen=True)
class TerminalRule:
    """``head → x``."""

    head: Nonterminal
    terminal: Terminal

    def __str__(self) -> str:
        return f"{self.head} -> {self.terminal}"


class ConjunctiveGrammar:
    """A conjunctive grammar in binary normal form."""

    def __init__(self, rules: Iterable[ConjunctiveRule | TerminalRule]):
        self.conjunctive_rules: list[ConjunctiveRule] = []
        self.terminal_rules: list[TerminalRule] = []
        nonterminals: set[Nonterminal] = set()
        for rule in rules:
            if isinstance(rule, ConjunctiveRule):
                self.conjunctive_rules.append(rule)
                nonterminals.add(rule.head)
                for b, c in rule.conjuncts:
                    nonterminals.update((b, c))
            elif isinstance(rule, TerminalRule):
                self.terminal_rules.append(rule)
                nonterminals.add(rule.head)
            else:
                raise TypeError(f"unsupported rule {rule!r}")
        self.nonterminals = frozenset(nonterminals)

    @classmethod
    def parse(cls, text: str, terminals: Sequence[str]) -> "ConjunctiveGrammar":
        """Parse lines like ``A -> B C & D E`` / ``A -> x``; heads and
        symbols are whitespace-separated, conjuncts ``&``-separated."""
        terminal_names = set(terminals)
        rules: list[ConjunctiveRule | TerminalRule] = []
        for raw_line in text.splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            head_text, _arrow, body_text = line.partition("->")
            head = Nonterminal(head_text.strip())
            conjunct_texts = [part.split() for part in body_text.split("&")]
            if len(conjunct_texts) == 1 and len(conjunct_texts[0]) == 1:
                name = conjunct_texts[0][0]
                if name in terminal_names:
                    rules.append(TerminalRule(head, Terminal(name)))
                    continue
            conjuncts = []
            for tokens in conjunct_texts:
                if len(tokens) != 2:
                    raise ValueError(
                        f"conjunct must be two non-terminals, got {tokens!r}"
                    )
                conjuncts.append((Nonterminal(tokens[0]), Nonterminal(tokens[1])))
            rules.append(ConjunctiveRule(head, tuple(conjuncts)))
        return cls(rules)


def _intersect(left: BooleanMatrix, right: BooleanMatrix,
               backend: MatrixBackend) -> BooleanMatrix:
    """Element-wise AND via pair-set intersection (backend-agnostic)."""
    pairs = left.to_pair_set() & right.to_pair_set()
    return backend.from_pairs(left.shape[0], pairs, cols=left.shape[1])


def solve_conjunctive_approx(graph: LabeledGraph, grammar: ConjunctiveGrammar,
                             backend: "str | MatrixBackend" = "sparse",
                             ) -> ContextFreeRelations:
    """Fixpoint of the conjunctive closure — the paper's hypothesised
    upper approximation of the (undecidable) exact relation.

    Each sweep computes, for every rule, the *intersection over
    conjuncts* of the boolean products, then unions the result into the
    head's matrix; sweeps repeat until no matrix grows.
    """
    backend_obj = get_backend(backend)
    n = graph.node_count

    matrices: dict[Nonterminal, BooleanMatrix] = {
        nt: backend_obj.zeros(n) for nt in grammar.nonterminals
    }
    for rule in grammar.terminal_rules:
        pairs = graph.edge_pairs(rule.terminal.label)
        if pairs:
            matrices[rule.head] = matrices[rule.head].union(
                backend_obj.from_pairs(n, pairs)
            )

    changed = True
    while changed:
        changed = False
        for rule in grammar.conjunctive_rules:
            contribution: BooleanMatrix | None = None
            for left, right in rule.conjuncts:
                product = matrices[left].multiply(matrices[right])
                contribution = (
                    product if contribution is None
                    else _intersect(contribution, product, backend_obj)
                )
            assert contribution is not None
            updated = matrices[rule.head].union(contribution)
            if updated.nnz() != matrices[rule.head].nnz():
                matrices[rule.head] = updated
                changed = True

    return ContextFreeRelations(
        graph, {nt: matrix.to_pair_set() for nt, matrix in matrices.items()}
    )


def anbncn_grammar() -> ConjunctiveGrammar:
    """The canonical non-context-free conjunctive language
    ``{aⁿ bⁿ cⁿ | n ≥ 1}`` in binary conjunctive normal form:

    ``S → (X C') & (A' Y)`` where ``X`` derives ``aⁿbⁿ``, ``Y`` derives
    ``bⁿcⁿ``, ``A'`` runs of a, ``C'`` runs of c.
    """
    return ConjunctiveGrammar.parse(
        """
        S  -> X Cs & As Y
        X  -> A Xb
        X  -> A B
        Xb -> X B
        Y  -> B Yc
        Y  -> B C
        Yc -> Y C
        As -> a
        As -> A As
        Cs -> c
        Cs -> C Cs
        A  -> a
        B  -> b
        C  -> c
        """,
        terminals=["a", "b", "c"],
    )
