"""Single-path query semantics (Section 5 of the paper), on the
semiring-generalized closure engine.

The relational answer says *that* a path exists; the single-path
semantics must also *present one path* per triple ``(A, m, n)``.  The
paper's Section 5 modifies the closure to store, with each non-terminal
in a cell, a **path length**: cells hold pairs ``(A, l_A)``;
initialization uses length 1; when ``A`` enters cell ``(i, j)`` through
``A → B C`` with ``(B, l_B) ∈ a[i,r]`` and ``(C, l_C) ∈ a[r,j]`` its
length is ``l_A = l_B + l_C``, and a recorded length is never replaced
by a *different* derivation's length (the paper: "the non-terminal A is
not added ... with an associated path length l2 for all l2 ≠ l1").

In semiring terms (this module's formulation) that is exactly the
closure ``M_A ← M_A ⊕ (M_B ⊗ M_C)`` over the **length semiring**
(:class:`repro.core.semiring.LengthSemiring`): ⊗ adds sub-path lengths
across the midpoint, ⊕/merge keeps the minimum — the canonical,
iteration-order-free form of the paper's no-update rule (see the
semiring module docstring).  The index is therefore built by the same
strategy-pluggable engine (:func:`repro.core.closure.run_closure`) as
the relational answer: ``naive``, semi-naive ``delta`` and tiled
``blocked`` all yield byte-identical annotations.

A concrete path of exactly the recorded length is recovered by the
simple recursive search the paper sketches after Theorem 5: split on
the midpoint ``r`` and rule ``A → B C`` whose recorded lengths add up.

:class:`SinglePathIndex` holds the annotated closure;
:func:`extract_path` performs the search, and
:func:`repro.core.engine.CFPQEngine.single_path` wires it up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from ..errors import PathNotFoundError
from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import LabeledGraph
from .relations import ContextFreeRelations
from .semiring import LENGTH_SEMIRING, solve_annotated

#: A path is a sequence of labeled edges (source_id, label, target_id).
PathEdge = tuple[int, str, int]
Path = tuple[PathEdge, ...]

#: Cell storage: (i, j) -> {A: recorded length}.
_Cells = dict[tuple[int, int], dict[Nonterminal, int]]


@dataclass(frozen=True)
class SinglePathIndex:
    """The length-annotated closure ``a_cf`` of Section 5."""

    graph: LabeledGraph
    grammar: CFG
    cells: _Cells
    iterations: int

    def length_of(self, nonterminal: Nonterminal, source_id: int,
                  target_id: int) -> int | None:
        """The recorded length ``l_A`` for ``(A, i, j)``, or None when
        ``(i, j) ∉ R_A``."""
        return self.cells.get((source_id, target_id), {}).get(nonterminal)

    def relations(self) -> ContextFreeRelations:
        """Project the annotation away — by Theorem 2 this is the
        relational-semantics answer."""
        by_nonterminal: dict[Nonterminal, set[tuple[int, int]]] = {
            nt: set() for nt in self.grammar.nonterminals
        }
        for (i, j), entries in self.cells.items():
            for nonterminal in entries:
                by_nonterminal[nonterminal].add((i, j))
        return ContextFreeRelations(self.graph, by_nonterminal)

    def entry_count(self) -> int:
        """Total (cell, non-terminal) entries."""
        return sum(len(entries) for entries in self.cells.values())


def build_single_path_index(graph: LabeledGraph, grammar: CFG,
                            normalize: bool = True,
                            strategy: str | None = None,
                            **strategy_options) -> SinglePathIndex:
    """Compute the length-annotated transitive closure of Section 5.

    The fixpoint runs on :func:`repro.core.closure.run_closure` over the
    length semiring, so any registered closure *strategy* (``delta`` by
    default, ``naive``, ``blocked``, plug-ins) applies — extra keyword
    options (``tile_size``, ``scheduler``) are forwarded to it; all
    strategies produce identical annotations.
    """
    working_grammar = ensure_cnf(grammar) if normalize else grammar
    working_grammar.require_cnf("single-path CFPQ")
    result = solve_annotated(graph, working_grammar, LENGTH_SEMIRING,
                             strategy=strategy, normalize=False,
                             **strategy_options)
    return SinglePathIndex(graph=graph, grammar=working_grammar,
                           cells=result.cells(),
                           iterations=result.iterations)


def extract_path(index: SinglePathIndex, nonterminal: Nonterminal | str,
                 source: Hashable, target: Hashable) -> Path:
    """Find one path ``source π target`` with ``A ⇒* l(π)`` whose length
    equals the recorded ``l_A`` — the paper's "simple search".

    Raises :class:`PathNotFoundError` when ``(source, target) ∉ R_A``.
    """
    if isinstance(nonterminal, str):
        nonterminal = Nonterminal(nonterminal)
    graph = index.graph
    source_id = graph.node_id(source)
    target_id = graph.node_id(target)
    length = index.length_of(nonterminal, source_id, target_id)
    if length is None:
        raise PathNotFoundError(
            f"({source!r}, {target!r}) is not in R_{nonterminal}"
        )
    if length == 0:
        # Nullable non-terminal: the witness is the empty path i π i.
        return ()

    grammar = index.grammar
    edge_labels: dict[tuple[int, int], list[str]] = {}
    for i, label, j in graph.edges_by_id():
        edge_labels.setdefault((i, j), []).append(label)

    def search(head: Nonterminal, i: int, j: int, needed: int) -> Path:
        if needed == 1:
            for label in edge_labels.get((i, j), ()):
                if head in grammar.heads_for_terminal(Terminal(label)):
                    return ((i, label, j),)
            raise PathNotFoundError(
                f"inconsistent index: no terminal edge for {head} at ({i}, {j})"
            )
        for rule in grammar.productions_for(head):
            if not rule.is_binary_rule:
                continue
            left, right = rule.body  # type: ignore[misc]
            # Scan midpoints r with (left, l_B) ∈ a[i,r], (right, l_C) ∈ a[r,j]
            # and l_B + l_C == needed.  Zero-length (nullable-diagonal)
            # operands are skipped: ε-elimination guarantees an
            # equivalent strict split, and restricting to l_B >= 1 keeps
            # the recursion well-founded on cyclic closures.
            for (row, r), entries in index.cells.items():
                if row != i:
                    continue
                left_length = entries.get(left)  # type: ignore[arg-type]
                if left_length is None or left_length < 1 or left_length >= needed:
                    continue
                right_length = index.cells.get((r, j), {}).get(right)  # type: ignore[arg-type]
                if right_length is None or left_length + right_length != needed:
                    continue
                return (search(left, i, r, left_length)  # type: ignore[arg-type]
                        + search(right, r, j, right_length))  # type: ignore[arg-type]
        raise PathNotFoundError(
            f"inconsistent index: cannot split ({i}, {j}) for {head} at length {needed}"
        )

    return search(nonterminal, source_id, target_id, length)


def path_word(path: Path) -> tuple[str, ...]:
    """The label word ``l(π)`` of a path."""
    return tuple(label for _source, label, _target in path)


def path_is_valid(index: SinglePathIndex, path: Path) -> bool:
    """Check that every edge of *path* exists in the graph and the edges
    are contiguous."""
    graph = index.graph
    previous_target: int | None = None
    for source_id, label, target_id in path:
        if previous_target is not None and source_id != previous_target:
            return False
        source = graph.node_at(source_id)
        target = graph.node_at(target_id)
        if not graph.has_edge(source, label, target):
            return False
        previous_target = target_id
    return True


def iter_single_paths(index: SinglePathIndex, nonterminal: Nonterminal | str,
                      ) -> Iterator[tuple[int, int, Path]]:
    """Yield ``(i, j, path)`` for every pair of ``R_A`` — the full
    single-path semantics answer for one non-terminal."""
    if isinstance(nonterminal, str):
        nonterminal = Nonterminal(nonterminal)
    for (i, j), entries in sorted(index.cells.items()):
        if nonterminal in entries:
            yield (i, j, extract_path(index, nonterminal,
                                      index.graph.node_at(i),
                                      index.graph.node_at(j)))
