"""Spillable tile store: the out-of-core working set of the blocked closure.

The paper's §7 out-of-core question — can graphs larger than device
memory be closed by the partitioned technique of Katz & Kider? — needs
exactly one mechanism on top of the tiled closure: a bounded working
set.  This module provides it as a first-class store:

* **Keyed cache** — tiles live under hashable keys (``(nonterminal, I,
  J)`` for the blocked closure) with LRU residency tracking and a
  configurable byte budget (:func:`parse_memory_budget` accepts ``"64K"``
  / ``"8M"`` / ``"1G"`` suffixes; ``REPRO_MEMORY_BUDGET`` supplies the
  default).
* **Spill via the payload codec** — a cold tile is encoded through the
  existing :meth:`MatrixBackend.tile_payload` hook.  Backends whose
  payload is one flat buffer (bitset words, dense bools) spill that
  buffer raw, and reload ``mmap``s the file with ``ACCESS_COPY`` —
  NumPy wraps the private-writable mapping **zero-copy**, pages fault
  in lazily, and mutations never reach the file.  Other backends
  (pyset, setmatrix, sparse CSR, annotated cells) fall back to pickling
  the payload tuple.  Spill files are private to this store (written
  and read by the same process), so the pickle path needs no restricted
  unpickler.
* **Version-keyed payload cache** — ``payload(key)`` memoizes the
  encoded payload per content version, so the process scheduler only
  re-encodes tiles that actually changed last round, and spilled tiles
  ship to workers straight from their file bytes without ever being
  re-materialized in the parent.
* **Pinning** — ``pinned(keys)`` marks a task's operand tiles
  non-evictable for the duration of the computation, so concurrent
  schedulers never thrash the exact tiles in flight.
* **Accounting** — :class:`TileStoreStats` counts spills/reloads/bytes/
  encodes and tracks ``peak_resident_bytes``, the number the
  out-of-core acceptance tests assert stays under the budget.

Spill-file lifecycle: each spill writes a **fresh** file and unlinks the
previous one (POSIX keeps the inode alive for any still-open mapping, so
a zero-copy reload is never invalidated by a newer spill of the same
tile).  ``close()`` removes everything on success; a crashed closure
closes with ``keep_spill=True`` so the directory survives for
post-mortem inspection.
"""

from __future__ import annotations

import contextlib
import mmap
import os
import pickle
import tempfile
import threading
import weakref
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from ..errors import UnknownBackendError
from ..matrices.base import BooleanMatrix, get_backend
from .tiles import matrix_from_payload, tile_payload_of

#: Environment variable supplying the default working-set budget
#: (bytes, with optional K/M/G suffix); empty/unset means unbounded.
MEMORY_BUDGET_ENV = "REPRO_MEMORY_BUDGET"

#: Environment variable supplying the default spill directory; unset
#: means a private temporary directory created on first spill.
SPILL_DIR_ENV = "REPRO_SPILL_DIR"

_SUFFIX_MULTIPLIERS = {
    "": 1, "B": 1,
    "K": 1024, "KB": 1024, "KIB": 1024,
    "M": 1024 ** 2, "MB": 1024 ** 2, "MIB": 1024 ** 2,
    "G": 1024 ** 3, "GB": 1024 ** 3, "GIB": 1024 ** 3,
    "T": 1024 ** 4, "TB": 1024 ** 4, "TIB": 1024 ** 4,
}


def parse_memory_budget(value) -> "int | None":
    """Parse a byte budget: an int, or a string like ``"65536"`` /
    ``"64K"`` / ``"8M"`` / ``"1G"`` (suffixes are powers of 1024; an
    optional ``B``/``iB`` is accepted).  ``None``, ``""``, ``"0"`` and
    ``"none"``/``"off"`` mean unbounded and return None."""
    if value is None:
        return None
    if isinstance(value, (int, float)):
        budget = int(value)
        return budget if budget > 0 else None
    text = str(value).strip().upper()
    if not text or text in {"0", "NONE", "OFF", "UNBOUNDED"}:
        return None
    number = text
    suffix = ""
    for index, char in enumerate(text):
        if not (char.isdigit() or char in ".+"):
            number, suffix = text[:index], text[index:]
            break
    try:
        multiplier = _SUFFIX_MULTIPLIERS[suffix.strip()]
        budget = int(float(number) * multiplier)
    except (KeyError, ValueError):
        raise ValueError(
            f"unparseable memory budget {value!r}; expected bytes or a "
            "K/M/G-suffixed size like '64K' or '8M'"
        ) from None
    return budget if budget > 0 else None


def resolve_memory_budget(value=None) -> "int | None":
    """Budget from *value* when given, else ``$REPRO_MEMORY_BUDGET``."""
    if value is not None:
        return parse_memory_budget(value)
    return parse_memory_budget(os.environ.get(MEMORY_BUDGET_ENV))


def resolve_spill_dir(value=None) -> "str | None":
    """Spill directory from *value* when given, else ``$REPRO_SPILL_DIR``."""
    if value is not None:
        return os.fspath(value)
    return os.environ.get(SPILL_DIR_ENV) or None


def available_memory_bytes() -> "int | None":
    """``MemAvailable`` from ``/proc/meminfo`` (None when unreadable) —
    the measured signal the autotune strategy budgets against."""
    try:
        with open("/proc/meminfo", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - exotic
        pass
    return None


def matrix_nbytes(matrix: BooleanMatrix) -> int:
    """Approximate resident bytes of any matrix, dispatching to its
    backend's :meth:`MatrixBackend.matrix_nbytes` (with a coordinate
    estimate for annotated/third-party matrices)."""
    backend_name = matrix.backend_name
    if backend_name == "annotated":
        from .semiring import AnnotatedBackend

        return AnnotatedBackend(matrix.semiring).matrix_nbytes(matrix)
    try:
        backend = get_backend(backend_name)
    except UnknownBackendError:
        return 112 + 48 * matrix.nnz()
    return backend.matrix_nbytes(matrix)


@dataclass
class TileStoreStats:
    """Mutable counters for one store's lifetime.

    ``tiles_spilled`` counts spill-file *writes* (an unchanged tile
    evicted twice writes once), ``tiles_reloaded`` counts
    materializations from disk, ``spill_bytes`` sums the bytes written,
    ``payload_encodes`` counts :func:`tile_payload_of` invocations (the
    process-scheduler re-serialization cost), ``evictions`` counts
    residency drops, and ``peak_resident_bytes`` is the high-water mark
    of the accounted working set.
    """

    tiles_spilled: int = 0
    tiles_reloaded: int = 0
    spill_bytes: int = 0
    payload_encodes: int = 0
    evictions: int = 0
    peak_resident_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "tiles_spilled": self.tiles_spilled,
            "tiles_reloaded": self.tiles_reloaded,
            "spill_bytes": self.spill_bytes,
            "payload_encodes": self.payload_encodes,
            "evictions": self.evictions,
            "peak_resident_bytes": self.peak_resident_bytes,
        }


class _Entry:
    """Per-key state: the resident tile (if any), its content version,
    the version-tagged payload cache, and the spill-file bookkeeping."""

    __slots__ = ("tile", "nbytes", "version", "payload", "payload_version",
                 "spill_path", "spill_version", "spill_meta", "spill_raw")

    def __init__(self) -> None:
        self.tile: "BooleanMatrix | None" = None
        self.nbytes = 0
        self.version = 0
        self.payload: "tuple | None" = None
        self.payload_version = -1
        self.spill_path: "str | None" = None
        self.spill_version = -1
        self.spill_meta: "tuple | None" = None
        self.spill_raw = False


class TileStore:
    """A budgeted, spillable, LRU cache of matrix tiles.

    Thread-safe (one re-entrant lock guards all state), so the thread
    tile scheduler can fetch operands concurrently.  ``budget_bytes``
    None means nothing ever spills — the store still provides the
    version-keyed payload cache the process scheduler relies on.
    Pinned keys (see :meth:`pinned`) are never evicted, so a working
    set larger than the budget keeps the run correct: the budget is
    enforced against every *unpinned* tile.
    """

    def __init__(self, budget_bytes=None, spill_dir: "str | None" = None,
                 payload_cache: bool = True):
        self._budget = parse_memory_budget(budget_bytes)
        self._requested_dir = spill_dir
        self._cache_payloads = payload_cache
        self._lock = threading.RLock()
        self._entries: dict[Hashable, _Entry] = {}
        self._lru: OrderedDict[Hashable, bool] = OrderedDict()
        self._pins: dict[Hashable, int] = {}
        self._resident_bytes = 0
        self._dir_path: "str | None" = None
        self._created_dir = False
        self._file_counter = 0
        self._closed = False
        self.stats = TileStoreStats()

    # -- introspection ----------------------------------------------------
    @property
    def budget_bytes(self) -> "int | None":
        return self._budget

    @property
    def resident_bytes(self) -> int:
        """Accounted bytes of all currently-resident tiles."""
        return self._resident_bytes

    @property
    def spill_dir(self) -> "str | None":
        """The spill directory path, once anything has spilled."""
        return self._dir_path

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list:
        with self._lock:
            return list(self._entries)

    # -- writes -----------------------------------------------------------
    def put(self, key: Hashable, tile: BooleanMatrix,
            changed: bool = True) -> None:
        """Store *tile* under *key* and make it resident.

        ``changed=False`` declares the content identical to what the
        store already holds (e.g. a merge whose delta was empty): the
        version — and with it the payload cache and any current spill
        file — stays valid, so nothing is re-encoded or re-spilled.
        """
        nbytes = matrix_nbytes(tile)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry()
                self._entries[key] = entry
                changed = True
            if entry.tile is not None:
                self._resident_bytes -= entry.nbytes
                self._lru.pop(key, None)
                entry.tile = None
            if changed:
                entry.version += 1
                entry.payload = None
                entry.payload_version = -1
            # Make room *before* the tile becomes resident, so the
            # accounted peak stays within the budget whenever the pinned
            # working set allows it (a single tile larger than the whole
            # budget still goes in — correctness over strictness).
            self._evict_over_budget(protect=key, headroom=nbytes)
            entry.tile = tile
            entry.nbytes = nbytes
            self._make_resident(key, entry)

    def put_payload(self, key: Hashable, payload: tuple) -> None:
        """Store an already-encoded tile without materializing it here.

        This is how process-scheduler results and snapshot loads enter
        the store: the payload is the content; a matrix is only built
        on the first :meth:`get`.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry()
                self._entries[key] = entry
            if entry.tile is not None:
                self._drop_resident(key, entry)
            entry.version += 1
            entry.payload = payload
            entry.payload_version = entry.version

    def mark_changed(self, key: Hashable) -> None:
        """Bump *key*'s content version after an external in-place
        mutation of its tile (invalidates payload cache and spill)."""
        with self._lock:
            entry = self._entries[key]
            entry.version += 1
            entry.payload = None
            entry.payload_version = -1

    def discard(self, key: Hashable) -> None:
        """Drop *key* entirely (residency, payload cache, spill file)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return
            self._drop_resident(key, entry)
            if entry.spill_path:
                with contextlib.suppress(OSError):
                    os.unlink(entry.spill_path)

    # -- reads ------------------------------------------------------------
    def get(self, key: Hashable) -> BooleanMatrix:
        """The tile under *key*, reloading from payload/spill if cold."""
        with self._lock:
            entry = self._entries[key]
            if entry.tile is not None:
                self._lru.move_to_end(key)
                return entry.tile
            tile = self._materialize(key, entry)
            nbytes = matrix_nbytes(tile)
            self._evict_over_budget(protect=key, headroom=nbytes)
            entry.tile = tile
            entry.nbytes = nbytes
            self._make_resident(key, entry)
            return tile

    #: :class:`repro.core.tiles.TileSource` protocol — schedulers read
    #: operand tiles via ``source.tile(key)``.
    def tile(self, key: Hashable) -> BooleanMatrix:
        return self.get(key)

    def payload(self, key: Hashable) -> tuple:
        """The encoded payload of *key*'s current content.

        Cached per content version; a spilled-clean tile rebuilds its
        payload from the file bytes without materializing a matrix —
        this is the parent-side path the process scheduler ships to
        workers.
        """
        with self._lock:
            entry = self._entries[key]
            if (entry.payload is not None
                    and entry.payload_version == entry.version):
                return entry.payload
            if entry.tile is not None:
                self._lru.move_to_end(key)
                self.stats.payload_encodes += 1
                payload = tile_payload_of(entry.tile)
            elif entry.spill_path and entry.spill_version == entry.version:
                payload = self._payload_from_spill(entry)
            else:
                raise KeyError(f"tile {key!r} has no current content")
            if self._cache_payloads:
                entry.payload = payload
                entry.payload_version = entry.version
            return payload

    # -- pinning ----------------------------------------------------------
    @contextlib.contextmanager
    def pinned(self, keys: Iterable[Hashable]) -> Iterator[None]:
        """Context manager: *keys* are not evictable while active.

        Re-entrant and thread-safe (pin counts); unknown keys are
        tolerated so callers can pin before the tile exists.
        """
        keys = list(keys)
        with self._lock:
            for key in keys:
                self._pins[key] = self._pins.get(key, 0) + 1
        try:
            yield
        finally:
            with self._lock:
                for key in keys:
                    remaining = self._pins.get(key, 0) - 1
                    if remaining > 0:
                        self._pins[key] = remaining
                    else:
                        self._pins.pop(key, None)

    # -- eviction ---------------------------------------------------------
    def evict_to_budget(self) -> None:
        """Spill cold tiles until the resident set fits the budget."""
        with self._lock:
            self._evict_over_budget()

    def spill_all(self) -> None:
        """Spill every unpinned resident tile (used before hand-off)."""
        with self._lock:
            for key in list(self._lru):
                if not self._pins.get(key):
                    self._spill(key, self._entries[key])

    # -- lifecycle --------------------------------------------------------
    def close(self, keep_spill: bool = False) -> None:
        """Release all entries; remove spill files unless *keep_spill*.

        A crashed run should pass ``keep_spill=True`` so the spill
        directory survives for inspection; a clean close removes the
        files and (when this store created it) the directory.
        """
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
            self._lru.clear()
            self._pins.clear()
            self._resident_bytes = 0
            self._closed = True
            if keep_spill:
                return
            for entry in entries:
                if entry.spill_path:
                    with contextlib.suppress(OSError):
                        os.unlink(entry.spill_path)
            if self._dir_path and self._created_dir:
                with contextlib.suppress(OSError):
                    os.rmdir(self._dir_path)
                self._dir_path = None

    # -- internals (caller holds the lock) --------------------------------
    def _make_resident(self, key: Hashable, entry: _Entry) -> None:
        self._lru[key] = True
        self._lru.move_to_end(key)
        self._resident_bytes += entry.nbytes
        if self._resident_bytes > self.stats.peak_resident_bytes:
            self.stats.peak_resident_bytes = self._resident_bytes

    def _drop_resident(self, key: Hashable, entry: _Entry) -> None:
        if entry.tile is None:
            return
        entry.tile = None
        self._resident_bytes -= entry.nbytes
        self._lru.pop(key, None)

    def _evict_over_budget(self, protect: Hashable = None,
                           headroom: int = 0) -> None:
        if self._budget is None:
            return
        while self._resident_bytes + headroom > self._budget:
            victim = None
            for key in self._lru:
                if key != protect and not self._pins.get(key):
                    victim = key
                    break
            if victim is None:
                break
            self._spill(victim, self._entries[victim])

    def _spill(self, key: Hashable, entry: _Entry) -> None:
        if entry.tile is None:
            return
        if entry.spill_version != entry.version:
            self._write_spill(entry)
        # The payload cache goes cold with the tile: a raw spill
        # rebuilds it from the file for the price of one read, and
        # keeping it would hide bytes from the budget.
        entry.payload = None
        entry.payload_version = -1
        self._drop_resident(key, entry)
        self.stats.evictions += 1

    def _write_spill(self, entry: _Entry) -> None:
        if (entry.payload is not None
                and entry.payload_version == entry.version):
            payload = entry.payload
        else:
            self.stats.payload_encodes += 1
            payload = tile_payload_of(entry.tile)
        backend = None
        kind = payload[0]
        if isinstance(kind, str):
            try:
                backend = get_backend(kind)
            except UnknownBackendError:
                backend = None
        meta, buffer = (payload, None)
        if backend is not None:
            meta, buffer = backend.spill_parts(payload)
        if buffer is None:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            meta, raw = None, False
        else:
            blob, raw = buffer, True
        path = self._next_spill_path()
        with open(path, "wb") as handle:
            handle.write(blob)
        previous = entry.spill_path
        entry.spill_path = path
        entry.spill_version = entry.version
        entry.spill_meta = meta
        entry.spill_raw = raw
        self.stats.tiles_spilled += 1
        self.stats.spill_bytes += len(blob)
        if previous:
            # Fresh file per spill: unlinking the superseded one is safe
            # even while an older zero-copy mapping still reads it (the
            # inode lives until the mapping dies).
            with contextlib.suppress(OSError):
                os.unlink(previous)

    def _materialize(self, key: Hashable, entry: _Entry) -> BooleanMatrix:
        if (entry.payload is not None
                and entry.payload_version == entry.version):
            return matrix_from_payload(entry.payload)
        if entry.spill_path and entry.spill_version == entry.version:
            return self._reload(entry)
        raise KeyError(f"tile {key!r} has no current content")

    def _reload(self, entry: _Entry) -> BooleanMatrix:
        self.stats.tiles_reloaded += 1
        if entry.spill_raw:
            with open(entry.spill_path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size == 0:
                    buffer = b""
                else:
                    # ACCESS_COPY: pages fault in lazily, writes stay
                    # private — the mapping outlives the closed fd.
                    buffer = mmap.mmap(handle.fileno(), 0,
                                       access=mmap.ACCESS_COPY)
            meta = entry.spill_meta
            return get_backend(meta[0]).tile_from_parts(meta, buffer)
        with open(entry.spill_path, "rb") as handle:
            payload = pickle.load(handle)
        return matrix_from_payload(payload)

    def _payload_from_spill(self, entry: _Entry) -> tuple:
        with open(entry.spill_path, "rb") as handle:
            blob = handle.read()
        if entry.spill_raw:
            meta = entry.spill_meta
            return get_backend(meta[0]).payload_from_parts(meta, blob)
        return pickle.loads(blob)

    def _next_spill_path(self) -> str:
        directory = self._spill_directory()
        self._file_counter += 1
        return os.path.join(directory, f"tile-{self._file_counter:08d}.bin")

    def _spill_directory(self) -> str:
        if self._dir_path is None:
            if self._requested_dir is not None:
                path = os.path.abspath(self._requested_dir)
                self._created_dir = not os.path.isdir(path)
                os.makedirs(path, exist_ok=True)
                self._dir_path = path
            else:
                self._dir_path = tempfile.mkdtemp(prefix="repro-spill-")
                self._created_dir = True
        return self._dir_path


class SpillableMatrixMap(Mapping):
    """A ``symbol → matrix`` mapping whose values live in a
    :class:`TileStore` as whole-matrix tiles (key ``(symbol, 0, 0)``).

    This is how snapshot warm starts stay single-buffered: the service
    layer hands the engine this mapping, matrices materialize lazily on
    first access, and with a budget the cold ones spill instead of all
    being resident at once.  The underlying store is closed (spill files
    removed) when the map is garbage-collected or explicitly closed.
    """

    def __init__(self, store: TileStore, symbols: Iterable[Hashable]):
        self._store = store
        self._symbols = list(symbols)
        self._symbol_set = set(self._symbols)
        self._finalizer = weakref.finalize(self, store.close)

    @staticmethod
    def key_for(symbol: Hashable) -> tuple:
        return (symbol, 0, 0)

    @property
    def store(self) -> TileStore:
        return self._store

    def __getitem__(self, symbol: Hashable) -> BooleanMatrix:
        if symbol not in self._symbol_set:
            raise KeyError(symbol)
        return self._store.get(self.key_for(symbol))

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    def payload(self, symbol: Hashable) -> tuple:
        """The encoded payload of one matrix (snapshot save path —
        spilled matrices stream from disk, never re-materialized)."""
        if symbol not in self._symbol_set:
            raise KeyError(symbol)
        return self._store.payload(self.key_for(symbol))

    def close(self) -> None:
        self._finalizer()
