"""All-path query semantics, bounded (paper §7 future work).

The all-path semantics must present **all** paths for every triple
``(A, m, n)``.  On cyclic graphs that set is infinite (the paper cites
Hellings' annotated grammars as one fix); the tractable variant we
implement enumerates all paths **up to a length bound**, driven by the
same CNF decomposition the closure uses:

    paths(A, i, j, ≤L) =
        { (i,x,j) | (A → x) ∈ P, (i,x,j) ∈ E }                    (L ≥ 1)
      ∪ { p1 ++ p2 | (A → B C) ∈ P, r ∈ V,
                     p1 ∈ paths(B, i, r, ≤L-1), p2 ∈ paths(C, r, j, ≤L-1),
                     |p1| + |p2| ≤ L }

memoized on ``(A, i, j, L)``.  The relational projection of the bounded
answer converges to ``R_A`` as L grows (test-checked), which is how the
module doubles as an independent oracle for small graphs.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import LabeledGraph
from .single_path import Path


class AllPathEnumerator:
    """Enumerates all derivation paths up to a length bound."""

    def __init__(self, graph: LabeledGraph, grammar: CFG,
                 normalize: bool = True):
        self.graph = graph
        self.grammar = ensure_cnf(grammar) if normalize else grammar
        self.grammar.require_cnf("all-path enumeration")
        self._edges: dict[tuple[int, int], list[str]] = {}
        self._nodes_by_source: dict[int, set[int]] = {}
        for i, label, j in graph.edges_by_id():
            self._edges.setdefault((i, j), []).append(label)
            self._nodes_by_source.setdefault(i, set()).add(j)
        self._memo: dict[tuple[Nonterminal, int, int, int], frozenset[Path]] = {}

    def paths(self, nonterminal: Nonterminal | str, source: Hashable,
              target: Hashable, max_length: int) -> frozenset[Path]:
        """All paths ``source π target`` with ``A ⇒* l(π)`` and
        ``|π| ≤ max_length``."""
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        self.grammar.require_nonterminal(nonterminal)
        source_id = self.graph.node_id(source)
        target_id = self.graph.node_id(target)
        return self._paths(nonterminal, source_id, target_id, max_length)

    def _paths(self, head: Nonterminal, i: int, j: int,
               budget: int) -> frozenset[Path]:
        if budget < 1:
            return frozenset()
        key = (head, i, j, budget)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Guard against re-entrant cycles: seed the memo with the empty
        # set; any path found strictly within the budget is added below.
        self._memo[key] = frozenset()

        found: set[Path] = set()
        for label in self._edges.get((i, j), ()):
            if head in self.grammar.heads_for_terminal(Terminal(label)):
                found.add(((i, label, j),))

        if budget >= 2:
            for rule in self.grammar.productions_for(head):
                if not rule.is_binary_rule:
                    continue
                left, right = rule.body  # type: ignore[misc]
                for r in range(self.graph.node_count):
                    for left_path in self._paths(left, i, r, budget - 1):  # type: ignore[arg-type]
                        remaining = budget - len(left_path)
                        if remaining < 1:
                            continue
                        for right_path in self._paths(right, r, j, remaining):  # type: ignore[arg-type]
                            found.add(left_path + right_path)

        result = frozenset(found)
        self._memo[key] = result
        return result

    def relation_pairs(self, nonterminal: Nonterminal | str,
                       max_length: int) -> frozenset[tuple[int, int]]:
        """Pairs (i, j) with at least one bounded path — converges to
        ``R_A`` as *max_length* grows."""
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        pairs: set[tuple[int, int]] = set()
        for i in range(self.graph.node_count):
            for j in range(self.graph.node_count):
                if self._paths(nonterminal, i, j, max_length):
                    pairs.add((i, j))
        return frozenset(pairs)

    def iter_paths(self, nonterminal: Nonterminal | str, max_length: int,
                   ) -> Iterator[tuple[int, int, Path]]:
        """Yield every (i, j, path) with ``|path| ≤ max_length``."""
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        for i in range(self.graph.node_count):
            for j in range(self.graph.node_count):
                for path in sorted(self._paths(nonterminal, i, j, max_length)):
                    yield (i, j, path)


def count_paths(graph: LabeledGraph, grammar: CFG,
                nonterminal: Nonterminal | str, max_length: int) -> int:
    """Total number of bounded derivation paths across all node pairs."""
    enumerator = AllPathEnumerator(graph, grammar)
    return sum(
        1 for _i, _j, _path in enumerator.iter_paths(nonterminal, max_length)
    )
