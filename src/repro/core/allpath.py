"""All-path query semantics, bounded (paper §7 future work), on the
semiring-generalized closure engine.

The all-path semantics must present **all** paths for every triple
``(A, m, n)``.  On cyclic graphs that set is infinite (the paper cites
Hellings' annotated grammars as one fix); the tractable variant we
implement enumerates all paths **up to a length bound**:

    paths(A, i, j, ≤L) =
        { (i,x,j) | (A → x) ∈ P, (i,x,j) ∈ E }                    (L ≥ 1)
      ∪ { p1 ++ p2 | (A → B C) ∈ P, r ∈ V,
                     p1 ∈ paths(B, i, r, =l1), p2 ∈ paths(C, r, j, =l2),
                     l1 + l2 ≤ L }

In semiring terms, the candidate rules ``(A → B C, r)`` per triple are
exactly the **witness semiring** annotation computed by
:func:`repro.core.closure.run_closure`
(:class:`repro.core.semiring.WitnessSemiring`: ⊕ = set union, so the
fixpoint cell holds every decomposition — the paper's "midpoint index"
reading of §7).  :class:`AllPathEnumerator` therefore wraps
:class:`repro.core.path_index.AllPathIndex` — the engine-built parse
forest — and enumerates from it by *exact* path length, which strictly
decreases at every split: termination on cyclic graphs is structural,
not guarded by a memo (the pre-semiring recursive enumerator seeded its
memo with partial results and could return incomplete path sets when
re-entered on a cycle).

The relational projection of the bounded answer converges to ``R_A`` as
L grows (test-checked), which is how the module doubles as an
independent oracle for small graphs.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..grammar.cfg import CFG
from ..grammar.cnf import ensure_cnf
from ..grammar.symbols import Nonterminal
from ..graph.labeled_graph import LabeledGraph
from .path_index import AllPathIndex
from .single_path import Path


class AllPathEnumerator:
    """Enumerates all derivation paths up to a length bound.

    Built on the witness-semiring closure: construction runs the
    unified engine once (any *strategy*: ``delta`` default, ``naive``,
    ``blocked``); enumeration walks the resulting midpoint index.
    """

    def __init__(self, graph: LabeledGraph, grammar: CFG,
                 normalize: bool = True, strategy: str | None = None,
                 index: AllPathIndex | None = None,
                 **strategy_options):
        self.graph = graph
        self.grammar = ensure_cnf(grammar) if normalize else grammar
        self.grammar.require_cnf("all-path enumeration")
        # A pre-built forest (e.g. restored from a snapshot) skips the
        # witness-semiring closure entirely.
        self.index = index if index is not None else AllPathIndex.build(
            graph, self.grammar, strategy=strategy, **strategy_options
        )

    def paths(self, nonterminal: Nonterminal | str, source: Hashable,
              target: Hashable, max_length: int) -> frozenset[Path]:
        """All paths ``source π target`` with ``A ⇒* l(π)`` and
        ``|π| ≤ max_length``."""
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        self.grammar.require_nonterminal(nonterminal)
        return frozenset(
            self.index.iter_paths(nonterminal, source, target, max_length)
        )

    def relation_pairs(self, nonterminal: Nonterminal | str,
                       max_length: int) -> frozenset[tuple[int, int]]:
        """Pairs (i, j) with at least one bounded path — converges to
        ``R_A`` as *max_length* grows.

        A pair qualifies iff its minimal witness length fits the bound,
        so this reads the forest's shortest-witness lengths instead of
        enumerating.
        """
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        self.grammar.require_nonterminal(nonterminal)
        pairs: set[tuple[int, int]] = set()
        for i, j in self.index.relations.pairs(nonterminal):
            shortest = self.index.shortest_path_length(
                nonterminal, self.graph.node_at(i), self.graph.node_at(j)
            )
            if shortest is not None and shortest <= max_length:
                pairs.add((i, j))
        return frozenset(pairs)

    def iter_paths(self, nonterminal: Nonterminal | str, max_length: int,
                   ) -> Iterator[tuple[int, int, Path]]:
        """Yield every (i, j, path) with ``|path| ≤ max_length``."""
        if isinstance(nonterminal, str):
            nonterminal = Nonterminal(nonterminal)
        self.grammar.require_nonterminal(nonterminal)
        for i in range(self.graph.node_count):
            for j in range(self.graph.node_count):
                bounded = self.paths(nonterminal, self.graph.node_at(i),
                                     self.graph.node_at(j), max_length)
                for path in sorted(bounded):
                    yield (i, j, path)


def count_paths(graph: LabeledGraph, grammar: CFG,
                nonterminal: Nonterminal | str, max_length: int) -> int:
    """Total number of bounded derivation paths across all node pairs."""
    enumerator = AllPathEnumerator(graph, grammar)
    return sum(
        1 for _i, _j, _path in enumerator.iter_paths(nonterminal, max_length)
    )
