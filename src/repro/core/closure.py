"""Unified, strategy-pluggable closure engine.

Algorithm 1's hot loop is ``M_A ← M_A ∪ (M_B × M_C)`` over all pair
rules until nothing changes.  This module owns that loop and lets the
iteration *strategy* vary independently of the matrix *backend*:

* ``naive``   — re-multiply every pair rule over the full matrices each
  round; byte-for-byte the historical behavior, kept as the
  differential-testing oracle.
* ``delta``   — semi-naive evaluation: track per-non-terminal frontier
  matrices ``ΔM_A`` (the entries added last round), index the pair
  rules by body symbol so a change in ``M_B`` only re-fires rules
  mentioning ``B``, and multiply ``ΔM_B × M_C`` / ``M_B × ΔM_C``
  instead of full products.  The least fixpoint is identical (the
  closure is monotone — Theorem 3's argument); the work per round
  shrinks with the frontier.
* ``blocked`` — the naive rule loop with every product computed
  tile-by-tile via :mod:`repro.core.blocked`, bounding the working set
  per product (the paper's §7 multi-GPU / out-of-core direction).

All strategies run on any registered matrix backend through the mutable
kernel API (``MatrixBackend.union_update`` / ``mxm_into``), which falls
back to value semantics for backends without in-place support.  The
backend need not be boolean: the semiring-annotated adapter
(:mod:`repro.core.semiring`) implements the same kernels over
length- and witness-annotated cells, which is how the single-path and
all-path semantics run on this exact loop — a strategy improvement
lands on every query semantics at once.

Strategies are registered by name so downstream code can plug in its
own; ``run_closure`` is the single entry point the solvers route
through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from ..errors import UnknownStrategyError
from ..matrices.base import BooleanMatrix, MatrixBackend, get_backend

#: A pair rule ``A -> B C`` as (head, left-body, right-body).  Symbols
#: are any hashable keys into the matrices mapping (non-terminals in
#: practice).
PairRule = tuple[Hashable, Hashable, Hashable]

#: Default tile edge for the blocked strategy.
DEFAULT_TILE_SIZE = 64


@dataclass
class ClosureResult:
    """Outcome of one closure run (the matrices are closed in place)."""

    matrices: dict
    iterations: int
    multiplications: int
    #: New entries merged per round — the semi-naive frontier sizes for
    #: ``delta``, total growth per round for the other strategies.
    delta_nnz_per_round: tuple[int, ...] = ()


#: A closure strategy: closes *matrices* (mutating the mapping and/or
#: the matrices) under *pair_rules* on *backend*.
ClosureStrategy = Callable[..., ClosureResult]

_STRATEGIES: dict[str, ClosureStrategy] = {}


def register_strategy(name: str, strategy: ClosureStrategy,
                      ) -> ClosureStrategy:
    """Register *strategy* under *name* (idempotent overwrite)."""
    _STRATEGIES[name] = strategy
    return strategy


def get_strategy(name: str) -> ClosureStrategy:
    """Resolve a strategy by name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise UnknownStrategyError(name, list(_STRATEGIES)) from None


def available_strategies() -> list[str]:
    """Names of all registered closure strategies."""
    return sorted(_STRATEGIES)


def run_closure(matrices: dict, pair_rules: Iterable[PairRule],
                backend: "str | MatrixBackend",
                strategy: str = "delta",
                **options) -> ClosureResult:
    """Close *matrices* under *pair_rules* with the named strategy.

    The matrices mapping is updated in place (and, for mutation-capable
    backends, the matrices themselves are grown in place).  Extra
    keyword options are strategy-specific (``tile_size`` for
    ``blocked``).
    """
    backend_obj = get_backend(backend)
    return get_strategy(strategy)(matrices, list(pair_rules), backend_obj,
                                  **options)


# ----------------------------------------------------------------------
# Generic fixpoint driver (shared with the set-matrix oracle)
# ----------------------------------------------------------------------

def fixpoint_history(initial, step: Callable, equal: Callable,
                     max_iterations: int | None = None) -> list:
    """Iterate ``following = step(current)`` from *initial*, recording
    every state, until ``equal(following, current)`` (or the iteration
    cap).  Returns ``[T0, T1, ..., Tk]``; at the natural fixpoint the
    last two entries are equal.  This is the abstract shape shared by
    the paper-literal set-matrix closure and the boolean engines."""
    history = [initial]
    while True:
        current = history[-1]
        following = step(current)
        history.append(following)
        if equal(following, current):
            return history
        if max_iterations is not None and len(history) - 1 >= max_iterations:
            return history


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

def closure_naive(matrices: dict, pair_rules: list[PairRule],
                  backend: MatrixBackend, **_options) -> ClosureResult:
    """Full re-multiplication of every rule each round — Algorithm 1
    verbatim, the differential oracle for the cleverer strategies."""
    iterations = 0
    multiplications = 0
    growth: list[int] = []
    changed = True
    while changed:
        changed = False
        iterations += 1
        round_new = 0
        for head, left, right in pair_rules:
            product = matrices[left].multiply(matrices[right])
            multiplications += 1
            merged, delta = backend.union_update(matrices[head], product)
            matrices[head] = merged
            new_entries = delta.nnz()
            if new_entries:
                changed = True
                round_new += new_entries
        growth.append(round_new)
    return ClosureResult(matrices=matrices, iterations=iterations,
                         multiplications=multiplications,
                         delta_nnz_per_round=tuple(growth))


def closure_delta(matrices: dict, pair_rules: list[PairRule],
                  backend: MatrixBackend, **_options) -> ClosureResult:
    """Semi-naive delta propagation over a symbol worklist.

    ``frontier[A]`` accumulates the entries added to ``M_A`` since the
    last time ``A`` was propagated.  Popping ``A`` fires only the rules
    whose body mentions ``A``, multiplying the frontier against the
    *current* full matrices — ``ΔM_A × M_C`` / ``M_B × ΔM_A`` instead
    of full products — and merges the results immediately, so facts
    discovered early in a round feed later products of the same round
    (Gauss–Seidel order, like the naive loop's in-place updates).
    Deltas keep accumulating until their symbol is popped, which keeps
    products few and batched rather than one per tiny frontier.

    The least fixpoint is identical to ``naive`` (the closure is
    monotone; every new fact is eventually propagated through every
    rule mentioning its symbol — Theorem 3's argument bounds the
    rounds).
    """
    rules_by_left: dict[Hashable, list[tuple[Hashable, Hashable]]] = {}
    rules_by_right: dict[Hashable, list[tuple[Hashable, Hashable]]] = {}
    for head, left, right in pair_rules:
        rules_by_left.setdefault(left, []).append((head, right))
        rules_by_right.setdefault(right, []).append((head, left))

    frontier: dict[Hashable, BooleanMatrix] = {
        symbol: backend.clone(matrix)
        for symbol, matrix in matrices.items()
        if matrix.nnz()
    }

    iterations = 0
    multiplications = 0
    growth: list[int] = []

    def merge(head: Hashable, product: BooleanMatrix) -> int:
        merged, delta = backend.union_update(matrices[head], product)
        matrices[head] = merged
        delta_nnz = delta.nnz()
        if delta_nnz:
            accumulated = frontier.get(head)
            if accumulated is None:
                frontier[head] = delta
            else:
                frontier[head], _ = backend.union_update(accumulated, delta)
        return delta_nnz

    while frontier:
        iterations += 1
        round_new = 0
        # One round = drain the symbols queued at its start; symbols
        # (re)gaining a frontier mid-round run in the next round unless
        # they were still waiting in this one.
        for symbol in list(frontier):
            delta_matrix = frontier.pop(symbol, None)
            if delta_matrix is None:
                continue
            for head, right in rules_by_left.get(symbol, ()):
                right_matrix = matrices[right]
                if right_matrix.nnz() == 0:
                    continue
                multiplications += 1
                round_new += merge(
                    head, delta_matrix.multiply(right_matrix)
                )
            for head, left in rules_by_right.get(symbol, ()):
                left_matrix = matrices[left]
                if left_matrix.nnz() == 0:
                    continue
                multiplications += 1
                round_new += merge(
                    head, left_matrix.multiply(delta_matrix)
                )
        growth.append(round_new)
    return ClosureResult(matrices=matrices, iterations=iterations,
                         multiplications=multiplications,
                         delta_nnz_per_round=tuple(growth))


def closure_blocked(matrices: dict, pair_rules: list[PairRule],
                    backend: MatrixBackend,
                    tile_size: int = DEFAULT_TILE_SIZE,
                    **_options) -> ClosureResult:
    """The naive rule loop with tiled products (bounded working set).

    Every matrix is partitioned into ``tile_size``-square tiles once;
    each rule product runs tile-by-tile through
    :func:`repro.core.blocked.blocked_multiply`.  ``multiplications``
    counts *tile* products — the unit of work a device would schedule.
    """
    from .blocked import assemble_from_tiles, blocked_multiply, split_into_tiles

    if not matrices:
        return ClosureResult(matrices=matrices, iterations=0,
                             multiplications=0)
    size = next(iter(matrices.values())).shape[0]
    grid = max(1, (size + tile_size - 1) // tile_size)
    tiles = {
        symbol: split_into_tiles(matrix, tile_size, backend)
        for symbol, matrix in matrices.items()
    }

    iterations = 0
    multiplications = 0
    growth: list[int] = []
    changed = True
    while changed and size:
        changed = False
        iterations += 1
        round_new = 0
        for head, left, right in pair_rules:
            product_tiles, products = blocked_multiply(
                tiles[left], tiles[right], grid
            )
            multiplications += products
            head_tiles = tiles[head]
            for index, product_tile in product_tiles.items():
                merged, delta = backend.union_update(
                    head_tiles[index], product_tile
                )
                head_tiles[index] = merged
                new_entries = delta.nnz()
                if new_entries:
                    changed = True
                    round_new += new_entries
        growth.append(round_new)

    for symbol in matrices:
        matrices[symbol] = assemble_from_tiles(
            tiles[symbol], size, tile_size, backend
        )
    return ClosureResult(matrices=matrices, iterations=iterations,
                         multiplications=multiplications,
                         delta_nnz_per_round=tuple(growth))


register_strategy("naive", closure_naive)
register_strategy("delta", closure_delta)
register_strategy("blocked", closure_blocked)

#: The strategy names bundled with the library.
STRATEGIES = ("naive", "delta", "blocked")
