"""Unified, strategy-pluggable closure engine.

Algorithm 1's hot loop is ``M_A ← M_A ∪ (M_B × M_C)`` over all pair
rules until nothing changes.  This module owns that loop and lets the
iteration *strategy* vary independently of the matrix *backend*:

* ``naive``   — re-multiply every pair rule over the full matrices each
  round; byte-for-byte the historical behavior, kept as the
  differential-testing oracle.
* ``delta``   — semi-naive evaluation: track per-non-terminal frontier
  matrices ``ΔM_A`` (the entries added last round), index the pair
  rules by body symbol so a change in ``M_B`` only re-fires rules
  mentioning ``B``, and multiply ``ΔM_B × M_C`` / ``M_B × ΔM_C``
  instead of full products.  The least fixpoint is identical (the
  closure is monotone — Theorem 3's argument); the work per round
  shrinks with the frontier.
* ``blocked`` — a **frontier-aware parallel tile engine**: matrices are
  partitioned once into tiles, the frontier is tracked at *tile*
  granularity, and a round only schedules the (rule, I, J, K) tasks
  whose K-side or I-side input tile changed last round.  Each round's
  independent tile tasks form an explicit DAG executed on a pluggable
  scheduler (``serial`` / ``threads`` / ``process`` — see
  :mod:`repro.core.tiles`); merging happens in canonical key order, so
  the closure is byte-identical across schedulers and task orderings.
  This is the paper's §7 multi-GPU / out-of-core direction with the
  semi-naive trick pushed down to the device-task grain.
* ``autotune`` — picks the executor from live measurements: the
  matrices' measured bytes vs the memory budget (or the host's
  ``MemAvailable``) route oversized workloads to the blocked engine
  out-of-core, a timed scheduler probe on sampled tile groups decides
  whether a configured parallel scheduler actually wins, and per round
  the frontier density (``delta_nnz_per_round`` vs total nnz) chooses
  between a semi-naive delta round and a full naive round.

All strategies run on any registered matrix backend through the mutable
kernel API (``MatrixBackend.union_update`` / ``mxm_into``), which falls
back to value semantics for backends without in-place support.  The
backend need not be boolean: the semiring-annotated adapter
(:mod:`repro.core.semiring`) implements the same kernels over
length- and witness-annotated cells, which is how the single-path and
all-path semantics run on this exact loop — a strategy improvement
lands on every query semantics at once.

Strategies are registered by name so downstream code can plug in its
own; ``run_closure`` is the single entry point the solvers route
through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from ..errors import UnknownStrategyError
from ..matrices.base import BooleanMatrix, MatrixBackend, get_backend
from ..obs.metrics import DEFAULT_SIZE_BUCKETS, get_registry
from ..obs.trace import get_tracer, stopwatch

#: A pair rule ``A -> B C`` as (head, left-body, right-body).  Symbols
#: are any hashable keys into the matrices mapping (non-terminals in
#: practice).
PairRule = tuple[Hashable, Hashable, Hashable]

#: Default tile edge for the blocked strategy.
DEFAULT_TILE_SIZE = 64


@dataclass
class ClosureResult:
    """Outcome of one closure run (the matrices are closed in place)."""

    matrices: dict
    iterations: int
    multiplications: int
    #: New entries merged per round — the semi-naive frontier sizes for
    #: ``delta``, total growth per round for the other strategies.
    delta_nnz_per_round: tuple[int, ...] = ()
    #: Strategy-specific instrumentation: every bundled strategy stores
    #: per-round wall clock under ``"round_seconds"``; ``blocked``
    #: additionally stores a :class:`repro.core.blocked.BlockedStats`
    #: under ``"blocked"``, ``autotune`` its per-round decisions under
    #: ``"autotune"``.
    details: dict = field(default_factory=dict)


#: A closure strategy: closes *matrices* (mutating the mapping and/or
#: the matrices) under *pair_rules* on *backend*.
ClosureStrategy = Callable[..., ClosureResult]

_STRATEGIES: dict[str, ClosureStrategy] = {}


def register_strategy(name: str, strategy: ClosureStrategy,
                      ) -> ClosureStrategy:
    """Register *strategy* under *name* (idempotent overwrite)."""
    _STRATEGIES[name] = strategy
    return strategy


def get_strategy(name: str) -> ClosureStrategy:
    """Resolve a strategy by name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise UnknownStrategyError(name, list(_STRATEGIES)) from None


def available_strategies() -> list[str]:
    """Names of all registered closure strategies."""
    return sorted(_STRATEGIES)


def run_closure(matrices: dict, pair_rules: Iterable[PairRule],
                backend: "str | MatrixBackend",
                strategy: str = "delta",
                **options) -> ClosureResult:
    """Close *matrices* under *pair_rules* with the named strategy.

    The matrices mapping is updated in place (and, for mutation-capable
    backends, the matrices themselves are grown in place).  Extra
    keyword options are strategy-specific (``tile_size`` for
    ``blocked``).

    All bundled strategies accept ``initial_frontier`` — a mapping
    ``symbol -> delta matrix`` of entries *not yet merged* into
    *matrices*.  When given, the run merges the seeds and propagates
    only their consequences instead of re-deriving from scratch; this
    is the batch-incremental entry point (:mod:`repro.core.incremental`
    seeds it with the facts contributed by an edge-insertion batch).
    """
    backend_obj = get_backend(backend)
    tracer = get_tracer()
    with tracer.span("closure", strategy=strategy,
                     backend=type(backend_obj).__name__) as span, \
            stopwatch() as timer:
        result = get_strategy(strategy)(matrices, list(pair_rules),
                                        backend_obj, **options)
        span.set("iterations", result.iterations)
        span.set("multiplications", result.multiplications)
    _publish_closure_metrics(strategy, result, timer.elapsed)
    return result


def _publish_closure_metrics(strategy: str, result: ClosureResult,
                             elapsed_s: float) -> None:
    """Publish one closure run into the shared metrics registry."""
    registry = get_registry()
    registry.counter(
        "repro_closure_runs_total", "Closure runs", ("strategy",)
    ).inc(strategy=strategy)
    registry.counter(
        "repro_closure_rounds_total", "Closure rounds", ("strategy",)
    ).inc(result.iterations, strategy=strategy)
    registry.counter(
        "repro_closure_multiplications_total",
        "Matrix/tile products fired by closure", ("strategy",)
    ).inc(result.multiplications, strategy=strategy)
    registry.histogram(
        "repro_closure_seconds", "Closure wall time", ("strategy",)
    ).observe(elapsed_s, strategy=strategy)
    delta_histogram = registry.histogram(
        "repro_closure_delta_nnz", "New entries merged per closure round",
        ("strategy",), buckets=DEFAULT_SIZE_BUCKETS,
    )
    for round_nnz in result.delta_nnz_per_round:
        delta_histogram.observe(round_nnz, strategy=strategy)
    blocked = result.details.get("blocked")
    if blocked is not None:
        registry.counter(
            "repro_tile_products_total", "Tile products computed"
        ).inc(blocked.tile_products)
        registry.counter(
            "repro_tiles_skipped_total",
            "Tile products skipped by the tile-granular frontier"
        ).inc(blocked.tiles_skipped_by_frontier)
        registry.counter(
            "repro_tiles_spilled_total", "Tiles spilled to disk"
        ).inc(blocked.tiles_spilled)
        registry.counter(
            "repro_tiles_reloaded_total", "Tiles reloaded from spill"
        ).inc(blocked.tiles_reloaded)
        registry.gauge(
            "repro_tile_peak_resident_bytes",
            "Peak resident tile bytes of the last blocked closure"
        ).set(blocked.peak_resident_bytes)
        if blocked.budget_bytes is not None:
            registry.gauge(
                "repro_tile_budget_bytes",
                "Configured tile memory budget of the last blocked closure"
            ).set(blocked.budget_bytes)


def seed_frontier(matrices: dict, initial_frontier: dict,
                  backend: MatrixBackend) -> dict:
    """Merge *initial_frontier* seeds into *matrices* and return the
    exact per-symbol deltas (the genuinely new / refined entries) to
    start a semi-naive run from.  Symbols absent from *matrices* and
    seeds that add nothing are dropped."""
    frontier: dict[Hashable, BooleanMatrix] = {}
    for symbol, seed in initial_frontier.items():
        if symbol not in matrices or seed.nnz() == 0:
            continue
        merged, delta = backend.union_update(matrices[symbol], seed)
        matrices[symbol] = merged
        if delta.nnz():
            frontier[symbol] = delta
    return frontier


def _symbol_frontier(matrices: dict, initial_frontier: "dict | None",
                     backend: MatrixBackend) -> dict:
    """The starting symbol → delta frontier of a semi-naive run: the
    merged seeds when *initial_frontier* is given, else a clone of
    every nonzero matrix (the from-scratch case)."""
    if initial_frontier is not None:
        return seed_frontier(matrices, initial_frontier, backend)
    return {
        symbol: backend.clone(matrix)
        for symbol, matrix in matrices.items()
        if matrix.nnz()
    }


# ----------------------------------------------------------------------
# Generic fixpoint driver (shared with the set-matrix oracle)
# ----------------------------------------------------------------------

def fixpoint_history(initial, step: Callable, equal: Callable,
                     max_iterations: int | None = None) -> list:
    """Iterate ``following = step(current)`` from *initial*, recording
    every state, until ``equal(following, current)`` (or the iteration
    cap).  Returns ``[T0, T1, ..., Tk]``; at the natural fixpoint the
    last two entries are equal.  This is the abstract shape shared by
    the paper-literal set-matrix closure and the boolean engines."""
    history = [initial]
    while True:
        current = history[-1]
        following = step(current)
        history.append(following)
        if equal(following, current):
            return history
        if max_iterations is not None and len(history) - 1 >= max_iterations:
            return history


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

def closure_naive(matrices: dict, pair_rules: list[PairRule],
                  backend: MatrixBackend,
                  initial_frontier: "dict | None" = None,
                  **_options) -> ClosureResult:
    """Full re-multiplication of every rule each round — Algorithm 1
    verbatim, the differential oracle for the cleverer strategies.

    ``initial_frontier`` seeds are merged up front; the naive loop has
    no frontier to exploit, so the run is a full re-closure (correct,
    just not incremental — the semi-naive strategies are the fast path
    for seeded runs)."""
    if initial_frontier is not None:
        seed_frontier(matrices, initial_frontier, backend)
    tracer = get_tracer()
    iterations = 0
    multiplications = 0
    growth: list[int] = []
    round_seconds: list[float] = []
    changed = True
    while changed:
        changed = False
        iterations += 1
        with tracer.span("closure.round", strategy="naive",
                         round=iterations) as round_span, \
                stopwatch() as round_timer:
            round_new = 0
            for head, left, right in pair_rules:
                product = matrices[left].multiply(matrices[right])
                multiplications += 1
                merged, delta = backend.union_update(matrices[head], product)
                matrices[head] = merged
                new_entries = delta.nnz()
                if new_entries:
                    changed = True
                    round_new += new_entries
            round_span.set("new_entries", round_new)
        round_seconds.append(round_timer.elapsed)
        growth.append(round_new)
    return ClosureResult(matrices=matrices, iterations=iterations,
                         multiplications=multiplications,
                         delta_nnz_per_round=tuple(growth),
                         details={"round_seconds": tuple(round_seconds)})


def closure_delta(matrices: dict, pair_rules: list[PairRule],
                  backend: MatrixBackend,
                  initial_frontier: "dict | None" = None,
                  **_options) -> ClosureResult:
    """Semi-naive delta propagation over a symbol worklist.

    ``frontier[A]`` accumulates the entries added to ``M_A`` since the
    last time ``A`` was propagated.  Popping ``A`` fires only the rules
    whose body mentions ``A``, multiplying the frontier against the
    *current* full matrices — ``ΔM_A × M_C`` / ``M_B × ΔM_A`` instead
    of full products — and merges the results immediately, so facts
    discovered early in a round feed later products of the same round
    (Gauss–Seidel order, like the naive loop's in-place updates).
    Deltas keep accumulating until their symbol is popped, which keeps
    products few and batched rather than one per tiny frontier.

    The least fixpoint is identical to ``naive`` (the closure is
    monotone; every new fact is eventually propagated through every
    rule mentioning its symbol — Theorem 3's argument bounds the
    rounds).

    With ``initial_frontier`` the run starts from the merged seed
    deltas instead of the full matrices: only consequences of the seeds
    are re-derived, which is what makes batch edge insertion
    incremental (the matrices must already be closed; monotonicity then
    gives the same least fixpoint as a from-scratch run on the seeded
    inputs).
    """
    rules_by_left: dict[Hashable, list[tuple[Hashable, Hashable]]] = {}
    rules_by_right: dict[Hashable, list[tuple[Hashable, Hashable]]] = {}
    for head, left, right in pair_rules:
        rules_by_left.setdefault(left, []).append((head, right))
        rules_by_right.setdefault(right, []).append((head, left))

    frontier = _symbol_frontier(matrices, initial_frontier, backend)

    tracer = get_tracer()
    iterations = 0
    multiplications = 0
    growth: list[int] = []
    round_seconds: list[float] = []

    def merge(head: Hashable, product: BooleanMatrix) -> int:
        merged, delta = backend.union_update(matrices[head], product)
        matrices[head] = merged
        delta_nnz = delta.nnz()
        if delta_nnz:
            accumulated = frontier.get(head)
            if accumulated is None:
                frontier[head] = delta
            else:
                frontier[head], _ = backend.union_update(accumulated, delta)
        return delta_nnz

    while frontier:
        iterations += 1
        with tracer.span("closure.round", strategy="delta",
                         round=iterations) as round_span, \
                stopwatch() as round_timer:
            round_new = 0
            # One round = drain the symbols queued at its start; symbols
            # (re)gaining a frontier mid-round run in the next round
            # unless they were still waiting in this one.
            for symbol in list(frontier):
                delta_matrix = frontier.pop(symbol, None)
                if delta_matrix is None:
                    continue
                for head, right in rules_by_left.get(symbol, ()):
                    right_matrix = matrices[right]
                    if right_matrix.nnz() == 0:
                        continue
                    multiplications += 1
                    round_new += merge(
                        head, delta_matrix.multiply(right_matrix)
                    )
                for head, left in rules_by_right.get(symbol, ()):
                    left_matrix = matrices[left]
                    if left_matrix.nnz() == 0:
                        continue
                    multiplications += 1
                    round_new += merge(
                        head, left_matrix.multiply(delta_matrix)
                    )
            round_span.set("new_entries", round_new)
        round_seconds.append(round_timer.elapsed)
        growth.append(round_new)
    return ClosureResult(matrices=matrices, iterations=iterations,
                         multiplications=multiplications,
                         delta_nnz_per_round=tuple(growth),
                         details={"round_seconds": tuple(round_seconds)})


#: Prefix for the staging keys of un-merged group products inside the
#: tile store (disjoint from ``(symbol, I, J)`` tile keys).
_STAGE = "__stage__"


def closure_blocked(matrices: dict, pair_rules: list[PairRule],
                    backend: MatrixBackend,
                    tile_size: int = DEFAULT_TILE_SIZE,
                    scheduler: "str | None" = None,
                    frontier: bool = True,
                    task_order: "Callable | None" = None,
                    initial_frontier: "dict | None" = None,
                    memory_budget=None,
                    spill_dir: "str | None" = None,
                    tile_store=None,
                    payload_cache: bool = True,
                    **_options) -> ClosureResult:
    """Frontier-aware tiled closure on a pluggable scheduler, with an
    out-of-core spillable working set.

    Every matrix is partitioned into ``tile_size``-square tiles once —
    into a :class:`repro.core.tilestore.TileStore` keyed ``(symbol, I,
    J)``.  Per round, a (rule, I, J, K) tile task is generated only when
    the K-side input tile ``left[I, K]`` or the I-side input tile
    ``right[K, J]`` changed last round (round 1: every nonzero tile
    counts as changed, reproducing the full first round).  Tasks
    targeting the same output tile form one mul-accumulate group; the
    groups of a round are independent and run on *scheduler*
    (``serial`` / ``threads`` / ``process``; None honours
    ``$REPRO_SCHEDULER``), which reads operands from the store by key
    and pins only the tiles of the group in flight.  All group products
    are computed (staged in the store) before any merge, and merging
    walks the groups in canonical key order pinning just the output and
    staged tile, so the result is byte-identical for every scheduler,
    any task permutation (*task_order* may reorder the group list
    before scheduling) — and every memory budget.

    ``memory_budget`` (bytes; int or ``"64K"``-style string; None
    honours ``$REPRO_MEMORY_BUDGET``) bounds the resident tile bytes:
    cold tiles spill to ``spill_dir`` (None honours ``$REPRO_SPILL_DIR``,
    else a fresh temporary directory) through the backend payload codec,
    and bitset/dense tiles reload zero-copy via ``mmap``.  The spill
    directory is cleaned up on success and kept on a crash.  A
    caller-owned store can be passed as ``tile_store`` (it is then not
    closed here); ``payload_cache=False`` disables the version-keyed
    payload memoization (measurement hook for the re-serialization
    regression test).

    The least fixpoint equals ``naive``'s: whenever an input tile
    changes at round r, every task reading it re-fires at round r+1
    with the full current tiles, which is the semi-naive completeness
    argument at tile granularity; monotone growth bounds the rounds.

    ``multiplications`` counts *tile* products — the unit of work a
    device would schedule.  ``details["blocked"]`` carries a
    :class:`repro.core.blocked.BlockedStats` with the frontier savings
    (``tiles_skipped_by_frontier``), the scheduler wall time, and the
    spill counters (``tiles_spilled`` / ``tiles_reloaded`` /
    ``spill_bytes`` / ``payload_encodes`` / ``peak_resident_bytes``).
    """
    from .tiles import resolve_scheduler
    from .tilestore import TileStore, resolve_memory_budget, resolve_spill_dir

    if not matrices:
        return ClosureResult(matrices=matrices, iterations=0,
                             multiplications=0)
    scheduler_obj = resolve_scheduler(scheduler)
    seed_deltas = None
    if initial_frontier is not None:
        # Merge the seeds before tiling so the tiles hold the seeded
        # state; the exact deltas locate the initially-changed tiles.
        seed_deltas = seed_frontier(matrices, initial_frontier, backend)
    size = next(iter(matrices.values())).shape[0]
    grid = max(1, (size + tile_size - 1) // tile_size)

    owns_store = tile_store is None
    store = tile_store if tile_store is not None else TileStore(
        budget_bytes=resolve_memory_budget(memory_budget),
        spill_dir=resolve_spill_dir(spill_dir),
        payload_cache=payload_cache,
    )
    try:
        result = _closure_blocked_on_store(
            store, matrices, pair_rules, backend, tile_size, grid, size,
            scheduler_obj, frontier, task_order, seed_deltas,
        )
    except BaseException:
        if owns_store:
            # Keep the spill files for post-mortem inspection.
            store.close(keep_spill=True)
        raise
    if owns_store:
        store.close()
    return result


def _closure_blocked_on_store(store, matrices: dict,
                              pair_rules: list[PairRule],
                              backend: MatrixBackend, tile_size: int,
                              grid: int, size: int, scheduler_obj,
                              frontier: bool,
                              task_order: "Callable | None",
                              seed_deltas: "dict | None") -> ClosureResult:
    from .blocked import BlockedStats, split_into_tiles

    nonzero: dict[Hashable, set] = {}
    for symbol in list(matrices):
        symbol_tiles = split_into_tiles(matrices[symbol], tile_size, backend)
        matrices[symbol] = None  # the store holds the working copy now
        indexes = set()
        # Pop as we insert so the budget governs the split too: a tile
        # the store decides to spill is released immediately.
        for index in sorted(symbol_tiles):
            tile = symbol_tiles.pop(index)
            if tile.nnz():
                indexes.add(index)
            store.put((symbol,) + index, tile)
        nonzero[symbol] = indexes
    if seed_deltas is None:
        # Round 1 treats every nonzero tile as freshly changed.
        changed: dict[Hashable, set] = {
            symbol: set(indexes)
            for symbol, indexes in nonzero.items() if indexes
        }
    else:
        # Seeded run: only the tiles an inserted entry landed in count
        # as changed — the tile-granular insertion frontier.
        changed = {}
        for symbol, delta in seed_deltas.items():
            touched = {
                (i // tile_size, j // tile_size)
                for i, j in delta.nonzero_pairs()
            }
            if touched:
                changed[symbol] = touched

    tracer = get_tracer()
    iterations = 0
    tile_products = 0
    tiles_skipped = 0
    scheduler_seconds = 0.0
    growth: list[int] = []
    round_seconds: list[float] = []

    while changed and size:
        iterations += 1
        round_timer = stopwatch()
        with tracer.span("closure.round", strategy="blocked",
                         round=iterations) as round_span:
            # Index the nonzero tiles by their inner coordinate K once
            # per round: as left operand (I, K) grouped by K, as right
            # operand (K, J) grouped by K.
            left_by_k: dict[Hashable, dict[int, list[int]]] = {}
            right_by_k: dict[Hashable, dict[int, list[int]]] = {}
            for symbol, indexes in nonzero.items():
                by_col: dict[int, list[int]] = {}
                by_row: dict[int, list[int]] = {}
                for (a, b) in indexes:
                    by_col.setdefault(b, []).append(a)   # left (I, K=b)
                    by_row.setdefault(a, []).append(b)   # right (K=a, J)
                left_by_k[symbol] = by_col
                right_by_k[symbol] = by_row

            groups: dict[tuple, set[int]] = {}
            full_products = 0
            for rule_index, (head, left, right) in enumerate(pair_rules):
                left_cols = left_by_k.get(left)
                right_rows = right_by_k.get(right)
                if not left_cols or not right_rows:
                    continue
                for k in left_cols.keys() & right_rows.keys():
                    full_products += len(left_cols[k]) * len(right_rows[k])
                if frontier:
                    fired: set[tuple[int, int, int]] = set()
                    for (i, k) in changed.get(left, ()):
                        for j in right_rows.get(k, ()):
                            fired.add((i, j, k))
                    for (k, j) in changed.get(right, ()):
                        for i in left_cols.get(k, ()):
                            fired.add((i, j, k))
                else:
                    fired = {
                        (i, j, k)
                        for k in left_cols.keys() & right_rows.keys()
                        for i in left_cols[k]
                        for j in right_rows[k]
                    }
                for (i, j, k) in fired:
                    groups.setdefault((rule_index, i, j), set()).add(k)

            # Groups reference operand tiles by store key; the scheduler
            # materializes (and pins) only what it is computing with.
            ordered = [
                (key, [
                    ((pair_rules[key[0]][1], key[1], k),
                     (pair_rules[key[0]][2], k, key[2]))
                    for k in sorted(ks)
                ])
                for key, ks in sorted(groups.items())
            ]
            round_products = sum(len(pairs) for _key, pairs in ordered)
            tile_products += round_products
            tiles_skipped += full_products - round_products
            round_span.set("tile_products", round_products)
            round_span.set("tiles_skipped",
                           full_products - round_products)
            if task_order is not None:
                ordered = task_order(ordered)

            def stage(key, result):
                # Process-scheduler results arrive as payload tuples and
                # are staged without materializing in this process.
                stage_key = (_STAGE,) + key
                if isinstance(result, tuple):
                    store.put_payload(stage_key, result)
                else:
                    store.put(stage_key, result)

            with tracer.span("closure.scheduler",
                             scheduler=scheduler_obj.name,
                             groups=len(ordered)), \
                    stopwatch() as scheduler_timer:
                scheduler_obj.run(ordered, store, stage)
            scheduler_seconds += scheduler_timer.elapsed

            next_changed: dict[Hashable, set] = {}
            round_new = 0
            with tracer.span("closure.merge", groups=len(groups)):
                for key in sorted(groups):
                    rule_index, i, j = key
                    head = pair_rules[rule_index][0]
                    stage_key = (_STAGE, rule_index, i, j)
                    out_key = (head, i, j)
                    with store.pinned((stage_key, out_key)):
                        merged, delta = backend.union_update(
                            store.get(out_key), store.get(stage_key)
                        )
                        new_entries = delta.nnz()
                        # Value-blind semirings (witness) may refine
                        # annotations in place without surfacing them in
                        # the delta; the tile content still changed, so
                        # its spill/payload version must move even
                        # though the frontier does not.
                        mutated = bool(new_entries) or getattr(
                            delta, "refined_in_place", False)
                        store.put(out_key, merged, changed=mutated)
                    store.discard(stage_key)
                    if new_entries:
                        round_new += new_entries
                        next_changed.setdefault(head, set()).add((i, j))
                        nonzero[head].add((i, j))
            round_span.set("new_entries", round_new)
        growth.append(round_new)
        round_seconds.append(round_timer.elapsed)
        changed = next_changed
        # Round barrier: let cold tiles spill before the next round's
        # task DAG pins a fresh working set.
        store.evict_to_budget()

    for symbol in nonzero:
        matrices[symbol] = backend.assemble_from_tile_iter(
            _drain_symbol_tiles(store, symbol, grid), size, tile_size
        )
    store_stats = store.stats
    stats = BlockedStats(
        tile_size=tile_size,
        grid=grid,
        tile_products=tile_products,
        iterations=iterations,
        tiles_skipped_by_frontier=tiles_skipped,
        scheduler=scheduler_obj.name,
        scheduler_wall_time_s=scheduler_seconds,
        tiles_spilled=store_stats.tiles_spilled,
        tiles_reloaded=store_stats.tiles_reloaded,
        spill_bytes=store_stats.spill_bytes,
        payload_encodes=store_stats.payload_encodes,
        peak_resident_bytes=store_stats.peak_resident_bytes,
        budget_bytes=store.budget_bytes,
    )
    return ClosureResult(matrices=matrices, iterations=iterations,
                         multiplications=tile_products,
                         delta_nnz_per_round=tuple(growth),
                         details={"blocked": stats,
                                  "round_seconds": tuple(round_seconds)})


def _drain_symbol_tiles(store, symbol: Hashable, grid: int):
    """Yield one symbol's tiles in grid order, releasing each from the
    store as it goes — assembly never holds more than one tile resident
    beyond the matrix being built."""
    for bi in range(grid):
        for bj in range(grid):
            key = (symbol, bi, bj)
            if key not in store:  # zero-size matrices split into no tiles
                continue
            tile = store.get(key)
            store.discard(key)
            yield (bi, bj), tile


#: Autotune: a round whose frontier holds at least this fraction of all
#: stored entries runs as a full naive round instead of a delta round.
AUTOTUNE_DENSE_FRONTIER_RATIO = 0.5

#: Autotune: with no explicit budget, matrices whose measured bytes
#: exceed this fraction of ``MemAvailable`` run out-of-core with a
#: budget of that fraction.
AUTOTUNE_AVAILABLE_FRACTION = 0.5

#: Autotune: candidate tile edges, largest first (64-multiples keep the
#: bitset backend on its word-aligned split/assemble fast paths).
AUTOTUNE_TILE_CANDIDATES = (512, 256, 128, 64)

#: Autotune: how many tiles the picked tile size should fit in the
#: budget — room for several concurrent groups' operands plus outputs.
AUTOTUNE_WORKING_SET_TILES = 16

#: Autotune: cap on the sample groups a scheduler probe executes.
AUTOTUNE_PROBE_GROUPS = 16


def _estimated_matrix_bytes(matrices: dict) -> int:
    from .tilestore import matrix_nbytes

    return sum(matrix_nbytes(matrix) for matrix in matrices.values())


def _pick_tile_size(size: int, budget: "int | None",
                    total_bytes: int, matrix_count: int) -> int:
    """Largest candidate tile edge whose working set
    (:data:`AUTOTUNE_WORKING_SET_TILES` tiles at the *measured* bytes
    per cell) fits the budget; unbounded runs take the largest."""
    candidates = [edge for edge in AUTOTUNE_TILE_CANDIDATES
                  if edge <= max(size, AUTOTUNE_TILE_CANDIDATES[-1])]
    if not candidates:
        candidates = [AUTOTUNE_TILE_CANDIDATES[-1]]
    if budget is None or not size or not matrix_count:
        return candidates[0]
    bytes_per_cell = max(total_bytes / (matrix_count * size * size), 0.125)
    for edge in candidates:
        if AUTOTUNE_WORKING_SET_TILES * bytes_per_cell * edge * edge <= budget:
            return edge
    return candidates[-1]


def _probe_scheduler_seconds(matrices: dict, pair_rules: list[PairRule],
                             backend: MatrixBackend, tile_size: int,
                             candidates) -> dict:
    """Measure each candidate scheduler's wall time on a sample of real
    tile groups (the heaviest rule's product, capped at
    :data:`AUTOTUNE_PROBE_GROUPS` output tiles).  Runs each candidate
    twice and keeps the best so pool start-up doesn't skew the
    comparison; results are discarded (probing never mutates)."""
    from .blocked import split_into_tiles
    from .tiles import MappingTileSource, resolve_scheduler

    heaviest = None
    for head, left, right in pair_rules:
        weight = matrices[left].nnz() * matrices[right].nnz()
        if weight and (heaviest is None or weight > heaviest[0]):
            heaviest = (weight, left, right)
    if heaviest is None:
        return {}
    _weight, left, right = heaviest
    left_tiles = split_into_tiles(matrices[left], tile_size, backend)
    right_tiles = split_into_tiles(matrices[right], tile_size, backend)
    sample = {}
    left_by_row: dict[int, list[int]] = {}
    right_by_col: dict[int, list[int]] = {}
    for (i, k), tile in left_tiles.items():
        if tile.nnz():
            sample[("L", i, k)] = tile
            left_by_row.setdefault(i, []).append(k)
    for (k, j), tile in right_tiles.items():
        if tile.nnz():
            sample[("R", k, j)] = tile
            right_by_col.setdefault(j, []).append(k)
    groups = []
    for i in sorted(left_by_row):
        for j in sorted(right_by_col):
            ks = sorted(set(left_by_row[i]) & set(right_by_col[j]))
            if not ks:
                continue
            groups.append(((i, j), [(("L", i, k), ("R", k, j))
                                    for k in ks]))
            if len(groups) >= AUTOTUNE_PROBE_GROUPS:
                break
        if len(groups) >= AUTOTUNE_PROBE_GROUPS:
            break
    if not groups:
        return {}
    source = MappingTileSource(sample)
    tracer = get_tracer()
    timings: dict[str, float] = {}
    for name in candidates:
        scheduler_obj = resolve_scheduler(name)
        best = None
        with tracer.span("closure.autotune.probe",
                         scheduler=scheduler_obj.name,
                         groups=len(groups)):
            for _attempt in range(2):
                with stopwatch() as attempt_timer:
                    scheduler_obj.run(list(groups), source)
                elapsed = attempt_timer.elapsed
                best = elapsed if best is None else min(best, elapsed)
        timings[scheduler_obj.name] = best
    return timings


def closure_autotune(matrices: dict, pair_rules: list[PairRule],
                     backend: MatrixBackend,
                     tile_size: "int | None" = None,
                     scheduler: "str | None" = None,
                     memory_budget=None,
                     spill_dir: "str | None" = None,
                     dense_frontier_ratio: float = AUTOTUNE_DENSE_FRONTIER_RATIO,
                     probe: bool = True,
                     initial_frontier: "dict | None" = None,
                     **options) -> ClosureResult:
    """Measurement-driven autotuning: every routing decision comes from
    a live measurement, never a fixed node-count threshold.

    Three measured signals drive the choice:

    * **working set vs memory** — the matrices' measured storage bytes
      (:func:`repro.core.tilestore.matrix_nbytes`) are compared against
      the budget (``memory_budget=`` / ``$REPRO_MEMORY_BUDGET``, else
      :data:`AUTOTUNE_AVAILABLE_FRACTION` of the host's measured
      ``MemAvailable`` when the estimate exceeds it).  A working set
      over budget routes to the blocked engine **out-of-core**, with
      the tile size picked so :data:`AUTOTUNE_WORKING_SET_TILES` tiles
      (at the measured bytes/cell) fit the budget;
    * **scheduler probe** — when a parallel scheduler is configured
      (``scheduler=`` or ``$REPRO_SCHEDULER``), a sample of real tile
      groups is executed on both ``serial`` and the configured
      scheduler and their measured wall times compared
      (``probe=False`` trusts the configuration without measuring).
      The parallel scheduler only wins the route when it is measurably
      faster — pool overhead on small workloads loses the probe and
      the run stays on whole-matrix rounds;
    * **frontier density** (``delta_nnz_per_round`` of the previous
      round vs the total stored entries) — a dense frontier means a
      delta round would multiply nearly-full matrices *twice* per rule
      (``Δleft × right`` and ``left × Δright``), so the round runs
      naive (one full product per rule); a sparse frontier runs
      semi-naive.

    Every mix of round executors converges to the same least fixpoint
    (each round's merge is monotone, and both round types propagate
    every frontier entry through every rule mentioning its symbol).
    The decisions — including probe timings and, for blocked routes,
    the run's spill/reload counters — land in ``details["autotune"]``.
    """
    from .tiles import resolve_scheduler
    from .tilestore import available_memory_bytes, resolve_memory_budget

    if not matrices:
        return ClosureResult(matrices=matrices, iterations=0,
                             multiplications=0)
    size = next(iter(matrices.values())).shape[0]
    scheduler_obj = resolve_scheduler(scheduler)

    estimated_bytes = _estimated_matrix_bytes(matrices)
    budget = resolve_memory_budget(memory_budget)
    budget_source = "configured" if budget is not None else None
    if budget is None:
        available = available_memory_bytes()
        if (available is not None
                and estimated_bytes > available * AUTOTUNE_AVAILABLE_FRACTION):
            budget = int(available * AUTOTUNE_AVAILABLE_FRACTION)
            budget_source = "measured MemAvailable"
    over_budget = budget is not None and estimated_bytes > budget

    chosen_tile_size = tile_size if tile_size is not None else \
        _pick_tile_size(size, budget, estimated_bytes, len(matrices))
    probe_timings: dict = {}
    parallel_wins = False
    if scheduler_obj.name != "serial":
        if probe:
            probe_timings = _probe_scheduler_seconds(
                matrices, pair_rules, backend, chosen_tile_size,
                ("serial", scheduler_obj),
            )
            serial_s = probe_timings.get("serial")
            parallel_s = probe_timings.get(scheduler_obj.name)
            parallel_wins = (serial_s is not None and parallel_s is not None
                            and parallel_s < serial_s)
        else:
            parallel_wins = True

    if over_budget or parallel_wins:
        if over_budget:
            mode = "blocked-spill"
            reason = (f"measured working set {estimated_bytes}B exceeds "
                      f"budget {budget}B ({budget_source}); tile_size "
                      f"{chosen_tile_size} fits "
                      f"{AUTOTUNE_WORKING_SET_TILES} tiles in budget")
        else:
            mode = "blocked-parallel"
            if probe_timings:
                reason = (f"scheduler {scheduler_obj.name!r} measured "
                          f"{probe_timings[scheduler_obj.name]:.6f}s vs "
                          f"serial {probe_timings['serial']:.6f}s on "
                          "sampled tile groups")
            else:
                reason = (f"scheduler {scheduler_obj.name!r} configured, "
                          "probe disabled")
        result = closure_blocked(matrices, pair_rules, backend,
                                 tile_size=chosen_tile_size,
                                 scheduler=scheduler_obj,
                                 memory_budget=budget,
                                 spill_dir=spill_dir,
                                 initial_frontier=initial_frontier,
                                 **options)
        blocked_stats = result.details.get("blocked")
        result.details["autotune"] = {
            "mode": mode,
            "reason": reason,
            "rounds": ["blocked"] * result.iterations,
            "probe_seconds": probe_timings,
            "estimated_bytes": estimated_bytes,
            "budget_bytes": budget,
            "tile_size": chosen_tile_size,
            "tiles_spilled": getattr(blocked_stats, "tiles_spilled", 0),
            "tiles_reloaded": getattr(blocked_stats, "tiles_reloaded", 0),
            "spill_bytes": getattr(blocked_stats, "spill_bytes", 0),
        }
        return result

    frontier = _symbol_frontier(matrices, initial_frontier, backend)
    tracer = get_tracer()
    iterations = 0
    multiplications = 0
    growth: list[int] = []
    rounds: list[str] = []
    round_seconds: list[float] = []

    while frontier:
        iterations += 1
        round_timer = stopwatch()
        total_nnz = sum(matrix.nnz() for matrix in matrices.values())
        frontier_nnz = sum(matrix.nnz() for matrix in frontier.values())
        dense_frontier = (total_nnz > 0
                          and frontier_nnz >= dense_frontier_ratio * total_nnz)
        rounds.append("naive" if dense_frontier else "delta")
        next_frontier: dict[Hashable, BooleanMatrix] = {}

        def merge(head: Hashable, product: BooleanMatrix) -> int:
            merged, delta = backend.union_update(matrices[head], product)
            matrices[head] = merged
            delta_nnz = delta.nnz()
            if delta_nnz:
                accumulated = next_frontier.get(head)
                if accumulated is None:
                    next_frontier[head] = delta
                else:
                    next_frontier[head], _ = backend.union_update(
                        accumulated, delta
                    )
            return delta_nnz

        round_new = 0
        with tracer.span("closure.round", strategy="autotune",
                         round=iterations, mode=rounds[-1]) as round_span:
            if dense_frontier:
                for head, left, right in pair_rules:
                    left_matrix, right_matrix = \
                        matrices[left], matrices[right]
                    if left_matrix.nnz() == 0 or right_matrix.nnz() == 0:
                        continue
                    multiplications += 1
                    round_new += merge(
                        head, left_matrix.multiply(right_matrix)
                    )
            else:
                for head, left, right in pair_rules:
                    delta_left = frontier.get(left)
                    if delta_left is not None and matrices[right].nnz():
                        multiplications += 1
                        round_new += merge(
                            head, delta_left.multiply(matrices[right])
                        )
                    delta_right = frontier.get(right)
                    if delta_right is not None and matrices[left].nnz():
                        multiplications += 1
                        round_new += merge(
                            head, matrices[left].multiply(delta_right)
                        )
            round_span.set("new_entries", round_new)
        growth.append(round_new)
        round_seconds.append(round_timer.elapsed)
        frontier = next_frontier

    return ClosureResult(
        matrices=matrices, iterations=iterations,
        multiplications=multiplications,
        delta_nnz_per_round=tuple(growth),
        details={"autotune": {"mode": "rounds", "rounds": rounds},
                 "round_seconds": tuple(round_seconds)},
    )


register_strategy("naive", closure_naive)
register_strategy("delta", closure_delta)
register_strategy("blocked", closure_blocked)
register_strategy("autotune", closure_autotune)

#: The strategy names bundled with the library.
STRATEGIES = ("naive", "delta", "blocked", "autotune")
