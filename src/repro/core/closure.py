"""Unified, strategy-pluggable closure engine.

Algorithm 1's hot loop is ``M_A ← M_A ∪ (M_B × M_C)`` over all pair
rules until nothing changes.  This module owns that loop and lets the
iteration *strategy* vary independently of the matrix *backend*:

* ``naive``   — re-multiply every pair rule over the full matrices each
  round; byte-for-byte the historical behavior, kept as the
  differential-testing oracle.
* ``delta``   — semi-naive evaluation: track per-non-terminal frontier
  matrices ``ΔM_A`` (the entries added last round), index the pair
  rules by body symbol so a change in ``M_B`` only re-fires rules
  mentioning ``B``, and multiply ``ΔM_B × M_C`` / ``M_B × ΔM_C``
  instead of full products.  The least fixpoint is identical (the
  closure is monotone — Theorem 3's argument); the work per round
  shrinks with the frontier.
* ``blocked`` — a **frontier-aware parallel tile engine**: matrices are
  partitioned once into tiles, the frontier is tracked at *tile*
  granularity, and a round only schedules the (rule, I, J, K) tasks
  whose K-side or I-side input tile changed last round.  Each round's
  independent tile tasks form an explicit DAG executed on a pluggable
  scheduler (``serial`` / ``threads`` / ``process`` — see
  :mod:`repro.core.tiles`); merging happens in canonical key order, so
  the closure is byte-identical across schedulers and task orderings.
  This is the paper's §7 multi-GPU / out-of-core direction with the
  semi-naive trick pushed down to the device-task grain.
* ``autotune`` — picks the round executor from live signals: the
  matrix size routes huge workloads to the frontier-aware blocked
  engine up front, and per round the frontier density
  (``delta_nnz_per_round`` vs total nnz) chooses between a semi-naive
  delta round and a full naive round.

All strategies run on any registered matrix backend through the mutable
kernel API (``MatrixBackend.union_update`` / ``mxm_into``), which falls
back to value semantics for backends without in-place support.  The
backend need not be boolean: the semiring-annotated adapter
(:mod:`repro.core.semiring`) implements the same kernels over
length- and witness-annotated cells, which is how the single-path and
all-path semantics run on this exact loop — a strategy improvement
lands on every query semantics at once.

Strategies are registered by name so downstream code can plug in its
own; ``run_closure`` is the single entry point the solvers route
through.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from ..errors import UnknownStrategyError
from ..matrices.base import BooleanMatrix, MatrixBackend, get_backend

#: A pair rule ``A -> B C`` as (head, left-body, right-body).  Symbols
#: are any hashable keys into the matrices mapping (non-terminals in
#: practice).
PairRule = tuple[Hashable, Hashable, Hashable]

#: Default tile edge for the blocked strategy.
DEFAULT_TILE_SIZE = 64


@dataclass
class ClosureResult:
    """Outcome of one closure run (the matrices are closed in place)."""

    matrices: dict
    iterations: int
    multiplications: int
    #: New entries merged per round — the semi-naive frontier sizes for
    #: ``delta``, total growth per round for the other strategies.
    delta_nnz_per_round: tuple[int, ...] = ()
    #: Strategy-specific instrumentation: ``blocked`` stores a
    #: :class:`repro.core.blocked.BlockedStats` under ``"blocked"``,
    #: ``autotune`` its per-round decisions under ``"autotune"``.
    details: dict = field(default_factory=dict)


#: A closure strategy: closes *matrices* (mutating the mapping and/or
#: the matrices) under *pair_rules* on *backend*.
ClosureStrategy = Callable[..., ClosureResult]

_STRATEGIES: dict[str, ClosureStrategy] = {}


def register_strategy(name: str, strategy: ClosureStrategy,
                      ) -> ClosureStrategy:
    """Register *strategy* under *name* (idempotent overwrite)."""
    _STRATEGIES[name] = strategy
    return strategy


def get_strategy(name: str) -> ClosureStrategy:
    """Resolve a strategy by name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise UnknownStrategyError(name, list(_STRATEGIES)) from None


def available_strategies() -> list[str]:
    """Names of all registered closure strategies."""
    return sorted(_STRATEGIES)


def run_closure(matrices: dict, pair_rules: Iterable[PairRule],
                backend: "str | MatrixBackend",
                strategy: str = "delta",
                **options) -> ClosureResult:
    """Close *matrices* under *pair_rules* with the named strategy.

    The matrices mapping is updated in place (and, for mutation-capable
    backends, the matrices themselves are grown in place).  Extra
    keyword options are strategy-specific (``tile_size`` for
    ``blocked``).

    All bundled strategies accept ``initial_frontier`` — a mapping
    ``symbol -> delta matrix`` of entries *not yet merged* into
    *matrices*.  When given, the run merges the seeds and propagates
    only their consequences instead of re-deriving from scratch; this
    is the batch-incremental entry point (:mod:`repro.core.incremental`
    seeds it with the facts contributed by an edge-insertion batch).
    """
    backend_obj = get_backend(backend)
    return get_strategy(strategy)(matrices, list(pair_rules), backend_obj,
                                  **options)


def seed_frontier(matrices: dict, initial_frontier: dict,
                  backend: MatrixBackend) -> dict:
    """Merge *initial_frontier* seeds into *matrices* and return the
    exact per-symbol deltas (the genuinely new / refined entries) to
    start a semi-naive run from.  Symbols absent from *matrices* and
    seeds that add nothing are dropped."""
    frontier: dict[Hashable, BooleanMatrix] = {}
    for symbol, seed in initial_frontier.items():
        if symbol not in matrices or seed.nnz() == 0:
            continue
        merged, delta = backend.union_update(matrices[symbol], seed)
        matrices[symbol] = merged
        if delta.nnz():
            frontier[symbol] = delta
    return frontier


def _symbol_frontier(matrices: dict, initial_frontier: "dict | None",
                     backend: MatrixBackend) -> dict:
    """The starting symbol → delta frontier of a semi-naive run: the
    merged seeds when *initial_frontier* is given, else a clone of
    every nonzero matrix (the from-scratch case)."""
    if initial_frontier is not None:
        return seed_frontier(matrices, initial_frontier, backend)
    return {
        symbol: backend.clone(matrix)
        for symbol, matrix in matrices.items()
        if matrix.nnz()
    }


# ----------------------------------------------------------------------
# Generic fixpoint driver (shared with the set-matrix oracle)
# ----------------------------------------------------------------------

def fixpoint_history(initial, step: Callable, equal: Callable,
                     max_iterations: int | None = None) -> list:
    """Iterate ``following = step(current)`` from *initial*, recording
    every state, until ``equal(following, current)`` (or the iteration
    cap).  Returns ``[T0, T1, ..., Tk]``; at the natural fixpoint the
    last two entries are equal.  This is the abstract shape shared by
    the paper-literal set-matrix closure and the boolean engines."""
    history = [initial]
    while True:
        current = history[-1]
        following = step(current)
        history.append(following)
        if equal(following, current):
            return history
        if max_iterations is not None and len(history) - 1 >= max_iterations:
            return history


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

def closure_naive(matrices: dict, pair_rules: list[PairRule],
                  backend: MatrixBackend,
                  initial_frontier: "dict | None" = None,
                  **_options) -> ClosureResult:
    """Full re-multiplication of every rule each round — Algorithm 1
    verbatim, the differential oracle for the cleverer strategies.

    ``initial_frontier`` seeds are merged up front; the naive loop has
    no frontier to exploit, so the run is a full re-closure (correct,
    just not incremental — the semi-naive strategies are the fast path
    for seeded runs)."""
    if initial_frontier is not None:
        seed_frontier(matrices, initial_frontier, backend)
    iterations = 0
    multiplications = 0
    growth: list[int] = []
    changed = True
    while changed:
        changed = False
        iterations += 1
        round_new = 0
        for head, left, right in pair_rules:
            product = matrices[left].multiply(matrices[right])
            multiplications += 1
            merged, delta = backend.union_update(matrices[head], product)
            matrices[head] = merged
            new_entries = delta.nnz()
            if new_entries:
                changed = True
                round_new += new_entries
        growth.append(round_new)
    return ClosureResult(matrices=matrices, iterations=iterations,
                         multiplications=multiplications,
                         delta_nnz_per_round=tuple(growth))


def closure_delta(matrices: dict, pair_rules: list[PairRule],
                  backend: MatrixBackend,
                  initial_frontier: "dict | None" = None,
                  **_options) -> ClosureResult:
    """Semi-naive delta propagation over a symbol worklist.

    ``frontier[A]`` accumulates the entries added to ``M_A`` since the
    last time ``A`` was propagated.  Popping ``A`` fires only the rules
    whose body mentions ``A``, multiplying the frontier against the
    *current* full matrices — ``ΔM_A × M_C`` / ``M_B × ΔM_A`` instead
    of full products — and merges the results immediately, so facts
    discovered early in a round feed later products of the same round
    (Gauss–Seidel order, like the naive loop's in-place updates).
    Deltas keep accumulating until their symbol is popped, which keeps
    products few and batched rather than one per tiny frontier.

    The least fixpoint is identical to ``naive`` (the closure is
    monotone; every new fact is eventually propagated through every
    rule mentioning its symbol — Theorem 3's argument bounds the
    rounds).

    With ``initial_frontier`` the run starts from the merged seed
    deltas instead of the full matrices: only consequences of the seeds
    are re-derived, which is what makes batch edge insertion
    incremental (the matrices must already be closed; monotonicity then
    gives the same least fixpoint as a from-scratch run on the seeded
    inputs).
    """
    rules_by_left: dict[Hashable, list[tuple[Hashable, Hashable]]] = {}
    rules_by_right: dict[Hashable, list[tuple[Hashable, Hashable]]] = {}
    for head, left, right in pair_rules:
        rules_by_left.setdefault(left, []).append((head, right))
        rules_by_right.setdefault(right, []).append((head, left))

    frontier = _symbol_frontier(matrices, initial_frontier, backend)

    iterations = 0
    multiplications = 0
    growth: list[int] = []

    def merge(head: Hashable, product: BooleanMatrix) -> int:
        merged, delta = backend.union_update(matrices[head], product)
        matrices[head] = merged
        delta_nnz = delta.nnz()
        if delta_nnz:
            accumulated = frontier.get(head)
            if accumulated is None:
                frontier[head] = delta
            else:
                frontier[head], _ = backend.union_update(accumulated, delta)
        return delta_nnz

    while frontier:
        iterations += 1
        round_new = 0
        # One round = drain the symbols queued at its start; symbols
        # (re)gaining a frontier mid-round run in the next round unless
        # they were still waiting in this one.
        for symbol in list(frontier):
            delta_matrix = frontier.pop(symbol, None)
            if delta_matrix is None:
                continue
            for head, right in rules_by_left.get(symbol, ()):
                right_matrix = matrices[right]
                if right_matrix.nnz() == 0:
                    continue
                multiplications += 1
                round_new += merge(
                    head, delta_matrix.multiply(right_matrix)
                )
            for head, left in rules_by_right.get(symbol, ()):
                left_matrix = matrices[left]
                if left_matrix.nnz() == 0:
                    continue
                multiplications += 1
                round_new += merge(
                    head, left_matrix.multiply(delta_matrix)
                )
        growth.append(round_new)
    return ClosureResult(matrices=matrices, iterations=iterations,
                         multiplications=multiplications,
                         delta_nnz_per_round=tuple(growth))


def closure_blocked(matrices: dict, pair_rules: list[PairRule],
                    backend: MatrixBackend,
                    tile_size: int = DEFAULT_TILE_SIZE,
                    scheduler: "str | None" = None,
                    frontier: bool = True,
                    task_order: "Callable | None" = None,
                    initial_frontier: "dict | None" = None,
                    **_options) -> ClosureResult:
    """Frontier-aware tiled closure on a pluggable scheduler.

    Every matrix is partitioned into ``tile_size``-square tiles once.
    Per round, a (rule, I, J, K) tile task is generated only when the
    K-side input tile ``left[I, K]`` or the I-side input tile
    ``right[K, J]`` changed last round (round 1: every nonzero tile
    counts as changed, reproducing the full first round).  Tasks
    targeting the same output tile form one mul-accumulate group; the
    groups of a round are independent and run on *scheduler*
    (``serial`` / ``threads`` / ``process``; None honours
    ``$REPRO_SCHEDULER``).  All group products are computed before any
    merge, and merging walks the groups in canonical key order, so the
    result is byte-identical for every scheduler and for any task
    permutation (*task_order* exists for the determinism tests: it may
    reorder the group list before scheduling).

    The least fixpoint equals ``naive``'s: whenever an input tile
    changes at round r, every task reading it re-fires at round r+1
    with the full current tiles, which is the semi-naive completeness
    argument at tile granularity; monotone growth bounds the rounds.

    ``multiplications`` counts *tile* products — the unit of work a
    device would schedule.  ``details["blocked"]`` carries a
    :class:`repro.core.blocked.BlockedStats` with the frontier savings
    (``tiles_skipped_by_frontier``) and the scheduler wall time.
    """
    from .blocked import BlockedStats, assemble_from_tiles, split_into_tiles
    from .tiles import resolve_scheduler

    if not matrices:
        return ClosureResult(matrices=matrices, iterations=0,
                             multiplications=0)
    scheduler_obj = resolve_scheduler(scheduler)
    seed_deltas = None
    if initial_frontier is not None:
        # Merge the seeds before tiling so the tiles hold the seeded
        # state; the exact deltas locate the initially-changed tiles.
        seed_deltas = seed_frontier(matrices, initial_frontier, backend)
    size = next(iter(matrices.values())).shape[0]
    grid = max(1, (size + tile_size - 1) // tile_size)
    tiles = {
        symbol: split_into_tiles(matrix, tile_size, backend)
        for symbol, matrix in matrices.items()
    }
    nonzero: dict[Hashable, set] = {
        symbol: {index for index, tile in symbol_tiles.items() if tile.nnz()}
        for symbol, symbol_tiles in tiles.items()
    }
    if seed_deltas is None:
        # Round 1 treats every nonzero tile as freshly changed.
        changed: dict[Hashable, set] = {
            symbol: set(indexes)
            for symbol, indexes in nonzero.items() if indexes
        }
    else:
        # Seeded run: only the tiles an inserted entry landed in count
        # as changed — the tile-granular insertion frontier.
        changed = {}
        for symbol, delta in seed_deltas.items():
            touched = {
                (i // tile_size, j // tile_size)
                for i, j in delta.nonzero_pairs()
            }
            if touched:
                changed[symbol] = touched

    iterations = 0
    tile_products = 0
    tiles_skipped = 0
    scheduler_seconds = 0.0
    growth: list[int] = []

    while changed and size:
        iterations += 1
        # Index the nonzero tiles by their inner coordinate K once per
        # round: as left operand (I, K) grouped by K, as right operand
        # (K, J) grouped by K.
        left_by_k: dict[Hashable, dict[int, list[int]]] = {}
        right_by_k: dict[Hashable, dict[int, list[int]]] = {}
        for symbol, indexes in nonzero.items():
            by_col: dict[int, list[int]] = {}
            by_row: dict[int, list[int]] = {}
            for (a, b) in indexes:
                by_col.setdefault(b, []).append(a)   # left tile (I, K=b)
                by_row.setdefault(a, []).append(b)   # right tile (K=a, J)
            left_by_k[symbol] = by_col
            right_by_k[symbol] = by_row

        groups: dict[tuple, set[int]] = {}
        full_products = 0
        for rule_index, (head, left, right) in enumerate(pair_rules):
            left_cols = left_by_k.get(left)
            right_rows = right_by_k.get(right)
            if not left_cols or not right_rows:
                continue
            for k in left_cols.keys() & right_rows.keys():
                full_products += len(left_cols[k]) * len(right_rows[k])
            if frontier:
                fired: set[tuple[int, int, int]] = set()
                for (i, k) in changed.get(left, ()):
                    for j in right_rows.get(k, ()):
                        fired.add((i, j, k))
                for (k, j) in changed.get(right, ()):
                    for i in left_cols.get(k, ()):
                        fired.add((i, j, k))
            else:
                fired = {
                    (i, j, k)
                    for k in left_cols.keys() & right_rows.keys()
                    for i in left_cols[k]
                    for j in right_rows[k]
                }
            for (i, j, k) in fired:
                groups.setdefault((rule_index, i, j), set()).add(k)

        ordered = [
            (key, [
                (tiles[pair_rules[key[0]][1]][(key[1], k)],
                 tiles[pair_rules[key[0]][2]][(k, key[2])])
                for k in sorted(ks)
            ])
            for key, ks in sorted(groups.items())
        ]
        round_products = sum(len(pairs) for _key, pairs in ordered)
        tile_products += round_products
        tiles_skipped += full_products - round_products
        if task_order is not None:
            ordered = task_order(ordered)

        started = time.perf_counter()
        results = scheduler_obj.run(ordered)
        scheduler_seconds += time.perf_counter() - started

        by_key = {key: result for (key, _pairs), result in
                  zip(ordered, results)}
        next_changed: dict[Hashable, set] = {}
        round_new = 0
        for key in sorted(by_key):
            rule_index, i, j = key
            head = pair_rules[rule_index][0]
            merged, delta = backend.union_update(
                tiles[head][(i, j)], by_key[key]
            )
            tiles[head][(i, j)] = merged
            new_entries = delta.nnz()
            if new_entries:
                round_new += new_entries
                next_changed.setdefault(head, set()).add((i, j))
                nonzero[head].add((i, j))
        growth.append(round_new)
        changed = next_changed

    for symbol in matrices:
        matrices[symbol] = assemble_from_tiles(
            tiles[symbol], size, tile_size, backend
        )
    stats = BlockedStats(
        tile_size=tile_size,
        grid=grid,
        tile_products=tile_products,
        iterations=iterations,
        tiles_skipped_by_frontier=tiles_skipped,
        scheduler=scheduler_obj.name,
        scheduler_wall_time_s=scheduler_seconds,
    )
    return ClosureResult(matrices=matrices, iterations=iterations,
                         multiplications=tile_products,
                         delta_nnz_per_round=tuple(growth),
                         details={"blocked": stats})


#: Autotune: run blocked-parallel when matrices are at least this large
#: *and* a parallel scheduler is configured.
AUTOTUNE_BLOCKED_MIN_SIZE = 2048

#: Autotune: a round whose frontier holds at least this fraction of all
#: stored entries runs as a full naive round instead of a delta round.
AUTOTUNE_DENSE_FRONTIER_RATIO = 0.5


def closure_autotune(matrices: dict, pair_rules: list[PairRule],
                     backend: MatrixBackend,
                     tile_size: int = DEFAULT_TILE_SIZE,
                     scheduler: "str | None" = None,
                     blocked_min_size: int = AUTOTUNE_BLOCKED_MIN_SIZE,
                     dense_frontier_ratio: float = AUTOTUNE_DENSE_FRONTIER_RATIO,
                     initial_frontier: "dict | None" = None,
                     **options) -> ClosureResult:
    """Strategy-aware autotuning: pick the executor per round.

    Two live signals drive the choice:

    * **matrix size × configured hardware** — when a parallel tile
      scheduler is declared (``scheduler=`` or ``$REPRO_SCHEDULER``
      naming anything but ``serial``) and the matrices are at least
      ``blocked_min_size`` nodes, the whole run is routed to the
      frontier-aware blocked engine: that is the regime where the
      bounded per-tile working set and the task pool beat whole-matrix
      products.  On serial hardware whole-matrix kernels always win, so
      no size routes to tiling;
    * **frontier density** (``delta_nnz_per_round`` of the previous
      round vs the total stored entries) — a dense frontier means a
      delta round would multiply nearly-full matrices *twice* per rule
      (``Δleft × right`` and ``left × Δright``), so the round runs
      naive (one full product per rule); a sparse frontier runs
      semi-naive.

    Every mix of round executors converges to the same least fixpoint
    (each round's merge is monotone, and both round types propagate
    every frontier entry through every rule mentioning its symbol).
    The decisions land in ``details["autotune"]``.
    """
    from .tiles import resolve_scheduler

    if not matrices:
        return ClosureResult(matrices=matrices, iterations=0,
                             multiplications=0)
    size = next(iter(matrices.values())).shape[0]
    scheduler_obj = resolve_scheduler(scheduler)
    if size >= blocked_min_size and scheduler_obj.name != "serial":
        result = closure_blocked(matrices, pair_rules, backend,
                                 tile_size=tile_size,
                                 scheduler=scheduler_obj,
                                 initial_frontier=initial_frontier,
                                 **options)
        result.details["autotune"] = {
            "mode": "blocked-parallel",
            "reason": (f"size {size} >= {blocked_min_size} on scheduler "
                       f"{scheduler_obj.name!r}"),
            "rounds": ["blocked"] * result.iterations,
        }
        return result

    frontier = _symbol_frontier(matrices, initial_frontier, backend)
    iterations = 0
    multiplications = 0
    growth: list[int] = []
    rounds: list[str] = []

    while frontier:
        iterations += 1
        total_nnz = sum(matrix.nnz() for matrix in matrices.values())
        frontier_nnz = sum(matrix.nnz() for matrix in frontier.values())
        dense_frontier = (total_nnz > 0
                          and frontier_nnz >= dense_frontier_ratio * total_nnz)
        rounds.append("naive" if dense_frontier else "delta")
        next_frontier: dict[Hashable, BooleanMatrix] = {}

        def merge(head: Hashable, product: BooleanMatrix) -> int:
            merged, delta = backend.union_update(matrices[head], product)
            matrices[head] = merged
            delta_nnz = delta.nnz()
            if delta_nnz:
                accumulated = next_frontier.get(head)
                if accumulated is None:
                    next_frontier[head] = delta
                else:
                    next_frontier[head], _ = backend.union_update(
                        accumulated, delta
                    )
            return delta_nnz

        round_new = 0
        if dense_frontier:
            for head, left, right in pair_rules:
                left_matrix, right_matrix = matrices[left], matrices[right]
                if left_matrix.nnz() == 0 or right_matrix.nnz() == 0:
                    continue
                multiplications += 1
                round_new += merge(head, left_matrix.multiply(right_matrix))
        else:
            for head, left, right in pair_rules:
                delta_left = frontier.get(left)
                if delta_left is not None and matrices[right].nnz():
                    multiplications += 1
                    round_new += merge(
                        head, delta_left.multiply(matrices[right])
                    )
                delta_right = frontier.get(right)
                if delta_right is not None and matrices[left].nnz():
                    multiplications += 1
                    round_new += merge(
                        head, matrices[left].multiply(delta_right)
                    )
        growth.append(round_new)
        frontier = next_frontier

    return ClosureResult(
        matrices=matrices, iterations=iterations,
        multiplications=multiplications,
        delta_nnz_per_round=tuple(growth),
        details={"autotune": {"mode": "rounds", "rounds": rounds}},
    )


register_strategy("naive", closure_naive)
register_strategy("delta", closure_delta)
register_strategy("blocked", closure_blocked)
register_strategy("autotune", closure_autotune)

#: The strategy names bundled with the library.
STRATEGIES = ("naive", "delta", "blocked", "autotune")
