"""Transitive closures from Section 2 of the paper.

For a square set-valued matrix ``a`` the paper defines two closures:

* Valiant's ``a+ = a(1)+ ∪ a(2)+ ∪ ...`` with
  ``a(i)+ = ⋃_{j<i} a(j)+ × a(i-j)+``,
* the paper's ``a_cf = a(1) ∪ a(2) ∪ ...`` with
  ``a(i) = a(i-1) ∪ (a(i-1) × a(i-1))``,

and Theorem 1 proves ``a+ = a_cf``.  We implement both (over
:class:`~repro.matrices.setmatrix.SetMatrix`) so the equivalence is
checkable, plus boolean closures and the closure *strategies* the
paper's §7 future work points at (repeated squaring; semi-naive delta;
block multiply).  The fixpoint iteration itself is the generic driver
from :mod:`repro.core.closure`, shared with the CFPQ engine.
"""

from __future__ import annotations

from ..matrices.base import BooleanMatrix, get_backend
from ..matrices.setmatrix import SetMatrix
from .closure import fixpoint_history


def _square_step(current: SetMatrix) -> SetMatrix:
    return current.union(current.multiply(current))


def closure_cf(matrix: SetMatrix, max_iterations: int | None = None) -> SetMatrix:
    """The paper's closure ``a_cf``: iterate ``a ← a ∪ (a × a)`` to the
    fixpoint.  Termination is Theorem 3 (≤ |V|²·|N| strict growths)."""
    return fixpoint_history(matrix, _square_step, SetMatrix.__eq__,
                            max_iterations=max_iterations)[-1]


def closure_valiant(matrix: SetMatrix, max_power: int) -> SetMatrix:
    """Valiant's ``⋃_{i<=max_power} a(i)+`` computed literally from the
    recursive definition — exponential bookkeeping, only for the tiny
    matrices in the Theorem 1 equivalence tests.

    ``a(1)+ = a``;  ``a(i)+ = ⋃_{j=1..i-1} a(j)+ × a(i-j)+``.
    """
    if max_power < 1:
        raise ValueError("max_power must be >= 1")
    powers: list[SetMatrix] = [matrix]  # powers[i-1] = a(i)+
    for i in range(2, max_power + 1):
        accumulator = None
        for j in range(1, i):
            term = powers[j - 1].multiply(powers[i - j - 1])
            accumulator = term if accumulator is None else accumulator.union(term)
        assert accumulator is not None
        powers.append(accumulator)
    union = powers[0]
    for power in powers[1:]:
        union = union.union(power)
    return union


def closure_cf_history(matrix: SetMatrix,
                       max_iterations: int | None = None) -> list[SetMatrix]:
    """Like :func:`closure_cf` but returning the whole iteration history
    ``[T0, T1, ..., Tk]`` (used to reproduce the paper's §4.3 figures;
    the fixpoint is reached when the last two entries are equal)."""
    return fixpoint_history(matrix, _square_step, SetMatrix.__eq__,
                            max_iterations=max_iterations)


# ----------------------------------------------------------------------
# Boolean closures (single relation) and closure strategies
# ----------------------------------------------------------------------

def boolean_closure_naive(matrix: BooleanMatrix) -> BooleanMatrix:
    """Boolean transitive closure by the paper's iteration
    ``a ← a ∪ a×a`` (number of multiplications is O(log of the longest
    shortest path), since squaring doubles reachable path lengths)."""
    if not matrix.is_square:
        raise ValueError("transitive closure requires a square matrix")
    current = matrix
    while True:
        following = current.union(current.multiply(current))
        if following.same_pairs(current):
            return current
        current = following


def boolean_closure_incremental(matrix: BooleanMatrix) -> BooleanMatrix:
    """Boolean transitive closure multiplying by the *original* matrix
    (``a ← a ∪ a×a0``) — linear number of cheaper multiplications; the
    contrast case for the squaring ablation."""
    if not matrix.is_square:
        raise ValueError("transitive closure requires a square matrix")
    current = matrix
    while True:
        following = current.union(current.multiply(matrix))
        if following.same_pairs(current):
            return current
        current = following


def boolean_closure_delta(matrix: BooleanMatrix) -> BooleanMatrix:
    """Semi-naive boolean transitive closure: keep a frontier ``Δ`` of
    entries added last round and extend only through it
    (``Δ×T ∪ T×Δ``), merging with the in-place kernel so the delta of
    genuinely-new pairs falls out of the union itself.  Same least
    fixpoint as :func:`boolean_closure_naive`, strictly less work per
    round once the frontier shrinks."""
    if not matrix.is_square:
        raise ValueError("transitive closure requires a square matrix")
    backend = get_backend(_backend_of(matrix))
    current = backend.clone(matrix)
    frontier = backend.clone(matrix)
    while frontier.nnz():
        pending = frontier.multiply(current)
        pending, _ = backend.mxm_into(current, frontier, pending)
        current, frontier = backend.union_update(current, pending)
    return current


def boolean_closure_warshall(matrix: BooleanMatrix) -> BooleanMatrix:
    """Floyd–Warshall-style boolean closure over the pair set — the
    O(|V|³) textbook reference the matrix variants are tested against."""
    if not matrix.is_square:
        raise ValueError("transitive closure requires a square matrix")
    size = matrix.shape[0]
    reach = {pair for pair in matrix.nonzero_pairs()}
    successors: dict[int, set[int]] = {}
    for i, j in reach:
        successors.setdefault(i, set()).add(j)
    for k in range(size):
        from_k = successors.get(k, set())
        if not from_k:
            continue
        for i in range(size):
            to_i = successors.get(i)
            if to_i and k in to_i:
                before = len(to_i)
                to_i |= from_k
                if len(to_i) != before:
                    successors[i] = to_i
    pairs = {(i, j) for i, js in successors.items() for j in js}
    backend = get_backend(_backend_of(matrix))
    return backend.from_pairs(size, pairs)


def _backend_of(matrix: BooleanMatrix) -> str:
    name = getattr(matrix, "backend_name", "abstract")
    if name == "abstract":
        raise TypeError(
            f"matrix type {type(matrix).__name__} declares no backend_name"
        )
    return name
