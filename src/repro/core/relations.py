"""Query results: the context-free relations ``R_A``.

The paper defines ``R_A = {(n, m) | ∃ nπm, l(π) ∈ L(G_A)}`` and the
relational query semantics returns the triples ``(A, m, n)``.
:class:`ContextFreeRelations` is the result object every solver in this
library produces, so engines and baselines are interchangeable and
directly comparable in tests.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from ..grammar.symbols import Nonterminal
from ..graph.labeled_graph import LabeledGraph

#: A node pair, by dense node id.
IdPair = tuple[int, int]


class ContextFreeRelations:
    """All relations ``R_A`` of one query evaluation over one graph.

    Node pairs are stored by dense node id; presentation methods map
    them back through the graph's node enumeration.
    """

    __slots__ = ("_graph", "_relations")

    def __init__(self, graph: LabeledGraph,
                 relations: Mapping[Nonterminal, Iterable[IdPair]]):
        self._graph = graph
        self._relations: dict[Nonterminal, frozenset[IdPair]] = {
            nonterminal: frozenset(pairs)
            for nonterminal, pairs in relations.items()
        }

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> LabeledGraph:
        """The queried graph."""
        return self._graph

    @property
    def nonterminals(self) -> frozenset[Nonterminal]:
        """Non-terminals with a (possibly empty) recorded relation."""
        return frozenset(self._relations)

    def pairs(self, nonterminal: Nonterminal | str) -> frozenset[IdPair]:
        """``R_A`` as dense-id pairs (empty when nothing was derived)."""
        return self._relations.get(_as_nonterminal(nonterminal), frozenset())

    def node_pairs(self, nonterminal: Nonterminal | str,
                   ) -> frozenset[tuple[Hashable, Hashable]]:
        """``R_A`` as original node objects."""
        return frozenset(
            (self._graph.node_at(i), self._graph.node_at(j))
            for i, j in self.pairs(nonterminal)
        )

    def contains(self, nonterminal: Nonterminal | str, source: Hashable,
                 target: Hashable) -> bool:
        """Membership test ``(source, target) ∈ R_A`` by node object."""
        pair = (self._graph.node_id(source), self._graph.node_id(target))
        return pair in self.pairs(nonterminal)

    def count(self, nonterminal: Nonterminal | str) -> int:
        """``|R_A|`` — the paper's ``#results`` column."""
        return len(self.pairs(nonterminal))

    def triples(self) -> Iterator[tuple[Nonterminal, int, int]]:
        """All result triples ``(A, m, n)`` — the relational semantics
        answer as defined in the paper's introduction."""
        for nonterminal in sorted(self._relations, key=lambda nt: nt.name):
            for i, j in sorted(self._relations[nonterminal]):
                yield (nonterminal, i, j)

    def restrict_to(self, nonterminals: Iterable[Nonterminal | str],
                    ) -> "ContextFreeRelations":
        """Keep only the requested relations (e.g. original grammar
        non-terminals, hiding CNF helper symbols)."""
        wanted = {_as_nonterminal(nt) for nt in nonterminals}
        return ContextFreeRelations(
            self._graph,
            {nt: pairs for nt, pairs in self._relations.items() if nt in wanted},
        )

    # ------------------------------------------------------------------
    # Comparisons (used throughout the cross-implementation tests)
    # ------------------------------------------------------------------
    def same_as(self, other: "ContextFreeRelations",
                nonterminals: Iterable[Nonterminal | str] | None = None) -> bool:
        """Equality of relations, optionally restricted to a symbol set.

        When *nonterminals* is None, compares every non-terminal known to
        either side (missing means empty).
        """
        if nonterminals is None:
            names = self.nonterminals | other.nonterminals
        else:
            names = {_as_nonterminal(nt) for nt in nonterminals}
        return all(self.pairs(nt) == other.pairs(nt) for nt in names)

    def diff(self, other: "ContextFreeRelations",
             nonterminal: Nonterminal | str) -> tuple[frozenset[IdPair], frozenset[IdPair]]:
        """(only-here, only-there) pair sets for one non-terminal —
        handy when a cross-implementation test fails."""
        mine = self.pairs(nonterminal)
        theirs = other.pairs(nonterminal)
        return (mine - theirs, theirs - mine)

    def as_dict(self) -> dict[str, list[IdPair]]:
        """JSON-friendly form: name -> sorted pair list."""
        return {
            nt.name: sorted(pairs)
            for nt, pairs in sorted(self._relations.items(), key=lambda kv: kv[0].name)
        }

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{nt.name}:{len(pairs)}"
            for nt, pairs in sorted(self._relations.items(), key=lambda kv: kv[0].name)
        )
        return f"ContextFreeRelations({sizes})"


def _as_nonterminal(value: Nonterminal | str) -> Nonterminal:
    return value if isinstance(value, Nonterminal) else Nonterminal(value)
