"""Blocked (tiled) closure — the paper's §7 multi-GPU / out-of-core
direction.

The paper closes with two systems questions: can the closure's matrix
multiplications be distributed across several GPUs, and can graphs
larger than GPU DRAM be processed by the partitioned-closure technique
of Katz & Kider [14]?  Both reduce to the same kernel-level property:
the boolean product decomposes into **tiles**,

    C[I,J] = ⋁_K  A[I,K] × B[K,J]

where each tile product touches only (3 · tile_size²) cells at a time —
that is the working-set bound out-of-core execution needs, and each
(I, J, K) triple is an independent task — that is the parallel grain
multi-GPU execution needs.

We implement the tiled product and closure over any backend and
*simulate* the device boundary: a :class:`TileDeviceSimulator` enforces
a "device memory" capacity (in tiles) and counts tile loads/evictions
(LRU), so tests can assert the working set really is bounded — the
property that makes the approach viable on real hardware — without
needing a GPU.  A round-robin scheduler records how tile tasks would
spread over k devices.

The tiled product also backs the ``blocked`` strategy of the unified
closure engine (:mod:`repro.core.closure`), which runs the full CFPQ
rule loop tile-by-tile on any backend.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..matrices.base import BooleanMatrix, MatrixBackend, get_backend

#: A tile coordinate within the blocked matrix.
TileIndex = tuple[int, int]


def split_into_tiles(matrix: BooleanMatrix, tile_size: int,
                     backend: MatrixBackend) -> dict[TileIndex, BooleanMatrix]:
    """Partition a square matrix into ceil(n/tile_size)² tiles.

    Delegates to :meth:`MatrixBackend.split_into_tiles` so backends with
    per-cell payloads (the semiring-annotated adapter) can keep them and
    record tile offsets; edge tiles are padded to full tile size.
    """
    return backend.split_into_tiles(matrix, tile_size)


def assemble_from_tiles(tiles: dict[TileIndex, BooleanMatrix], size: int,
                        tile_size: int,
                        backend: MatrixBackend) -> BooleanMatrix:
    """Inverse of :func:`split_into_tiles` (drops the padding)."""
    return backend.assemble_from_tiles(tiles, size, tile_size)


@dataclass
class TileDeviceSimulator:
    """An LRU "device memory" holding at most *capacity_tiles* tiles.

    ``touch`` marks a tile resident (loading it if absent, evicting the
    least recently used tile when full).  Counters expose the traffic a
    real accelerator would see.
    """

    capacity_tiles: int
    loads: int = 0
    evictions: int = 0
    hits: int = 0
    _resident: OrderedDict = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        if self.capacity_tiles < 3:
            raise ValueError(
                "a tile product needs at least 3 resident tiles (A, B, C)"
            )

    def touch(self, tag: tuple) -> None:
        if tag in self._resident:
            self._resident.move_to_end(tag)
            self.hits += 1
            return
        self.loads += 1
        self._resident[tag] = True
        if len(self._resident) > self.capacity_tiles:
            self._resident.popitem(last=False)
            self.evictions += 1

    @property
    def resident_count(self) -> int:
        """Tiles currently on the simulated device (≤ capacity)."""
        return len(self._resident)


@dataclass(frozen=True)
class BlockedStats:
    """Instrumentation of a blocked closure run.

    ``tiles_skipped_by_frontier`` counts tile products whose operands
    were both nonzero but which the frontier-aware strategy proved
    redundant (neither operand tile changed last round); the
    all-tiles-every-round behavior would have multiplied exactly
    ``tile_products + tiles_skipped_by_frontier`` tiles.
    ``scheduler_wall_time_s`` is the wall time spent inside the named
    tile scheduler's ``run`` (compute only — merging is excluded).

    The spill counters describe the run's out-of-core traffic through
    the :class:`repro.core.tilestore.TileStore`: ``tiles_spilled`` /
    ``spill_bytes`` count evicted-tile writes to the spill directory,
    ``tiles_reloaded`` counts cold tiles brought back (mmap or pickle),
    ``payload_encodes`` counts tile→payload serializations (the
    version-keyed payload cache makes unchanged tiles encode once), and
    ``peak_resident_bytes`` is the high-water mark of resident tile
    bytes — with a ``budget_bytes`` set, peak stays ≤ budget except for
    transiently pinned working sets.
    """

    tile_size: int
    grid: int
    tile_products: int
    iterations: int
    device_loads: int = 0
    device_evictions: int = 0
    tasks_per_device: dict = field(default_factory=dict)
    tiles_skipped_by_frontier: int = 0
    scheduler: str = "serial"
    scheduler_wall_time_s: float = 0.0
    tiles_spilled: int = 0
    tiles_reloaded: int = 0
    spill_bytes: int = 0
    payload_encodes: int = 0
    peak_resident_bytes: int = 0
    budget_bytes: "int | None" = None

    def as_dict(self) -> dict:
        """Plain-JSON view (the CLI ``--stats`` rendering)."""
        return {
            "tile_size": self.tile_size,
            "grid": self.grid,
            "tile_products": self.tile_products,
            "iterations": self.iterations,
            "device_loads": self.device_loads,
            "device_evictions": self.device_evictions,
            "tasks_per_device": dict(self.tasks_per_device),
            "tiles_skipped_by_frontier": self.tiles_skipped_by_frontier,
            "scheduler": self.scheduler,
            "scheduler_wall_time_s": self.scheduler_wall_time_s,
            "tiles_spilled": self.tiles_spilled,
            "tiles_reloaded": self.tiles_reloaded,
            "spill_bytes": self.spill_bytes,
            "payload_encodes": self.payload_encodes,
            "peak_resident_bytes": self.peak_resident_bytes,
            "budget_bytes": self.budget_bytes,
        }


def blocked_multiply(left_tiles: dict[TileIndex, BooleanMatrix],
                     right_tiles: dict[TileIndex, BooleanMatrix],
                     grid: int,
                     device: TileDeviceSimulator | None = None,
                     device_count: int = 1,
                     task_counter: dict[int, int] | None = None,
                     ) -> tuple[dict[TileIndex, BooleanMatrix], int]:
    """Tiled boolean product; returns (result tiles, #tile products).

    Each (I, J, K) product is assigned to device ``(I·grid + J) %
    device_count`` — the round-robin owner-computes schedule; with a
    :class:`TileDeviceSimulator` every operand/result touch is recorded.
    """
    products = 0
    result: dict[TileIndex, BooleanMatrix] = {}
    for bi in range(grid):
        for bj in range(grid):
            owner = (bi * grid + bj) % device_count
            accumulator: BooleanMatrix | None = None
            for bk in range(grid):
                left = left_tiles[(bi, bk)]
                right = right_tiles[(bk, bj)]
                if left.nnz() == 0 or right.nnz() == 0:
                    continue
                if device is not None:
                    device.touch(("A", bi, bk))
                    device.touch(("B", bk, bj))
                    device.touch(("C", bi, bj))
                product = left.multiply(right)
                products += 1
                if task_counter is not None:
                    task_counter[owner] = task_counter.get(owner, 0) + 1
                if accumulator is None:
                    accumulator = product
                elif accumulator.supports_inplace:
                    # The accumulator is a fresh product tile we own, so
                    # the in-place kernel avoids one allocation per k.
                    accumulator.union_update(product)
                else:
                    accumulator = accumulator.union(product)
            if accumulator is not None:
                result[(bi, bj)] = accumulator
    return result, products


def boolean_closure_blocked(matrix: BooleanMatrix, tile_size: int,
                            backend: "str | MatrixBackend" = "sparse",
                            device_capacity_tiles: int | None = None,
                            device_count: int = 1,
                            ) -> tuple[BooleanMatrix, BlockedStats]:
    """Transitive closure ``a ← a ∪ a×a`` computed tile-by-tile.

    *device_capacity_tiles* (default: 3, the minimum) bounds the
    simulated device memory; *device_count* spreads tile tasks
    round-robin.  Returns the closed matrix plus :class:`BlockedStats`.
    """
    if not matrix.is_square:
        raise ValueError("transitive closure requires a square matrix")
    backend_obj = get_backend(backend)
    n = matrix.shape[0]
    grid = max(1, (n + tile_size - 1) // tile_size)
    device = TileDeviceSimulator(device_capacity_tiles or 3)
    task_counter: dict[int, int] = {}

    tiles = split_into_tiles(matrix, tile_size, backend_obj)
    iterations = 0
    total_products = 0
    while True:
        iterations += 1
        square, products = blocked_multiply(
            tiles, tiles, grid, device=device, device_count=device_count,
            task_counter=task_counter,
        )
        total_products += products
        changed = False
        for index, tile in tiles.items():
            addition = square.get(index)
            if addition is None:
                continue
            union, delta = backend_obj.union_update(tile, addition)
            if delta.nnz():
                changed = True
            tiles[index] = union
        if not changed:
            break

    closed = assemble_from_tiles(tiles, n, tile_size, backend_obj)
    stats = BlockedStats(
        tile_size=tile_size,
        grid=grid,
        tile_products=total_products,
        iterations=iterations,
        device_loads=device.loads,
        device_evictions=device.evictions,
        tasks_per_device=dict(sorted(task_counter.items())),
    )
    return closed, stats
