"""Tile-task scheduling: the parallel grain of the blocked closure.

The frontier-aware blocked strategy (:func:`repro.core.closure.closure_blocked`)
expresses each closure round as a DAG of independent **tile-task
groups**: one group per output tile ``(rule, I, J)``, holding the
mul-accumulate chain over the inner index ``K``

    out[I, J]  =  ⋁_K  left[I, K] × right[K, J]      (K restricted to
                                                      frontier-reachable
                                                      tasks)

Groups never share an output, so they can run in any order and on any
executor; the per-round barrier (compute everything, then merge in
canonical key order) makes the closure byte-identical regardless of the
scheduler or the completion order — that property is what the
differential tests in ``tests/core/test_tile_scheduler.py`` lock.

Groups reference their operand tiles **by key** through a
:class:`TileSource` (the spillable :class:`repro.core.tilestore.TileStore`
in the blocked closure; :class:`MappingTileSource` over a plain dict
elsewhere), so a scheduler only materializes the tiles it is actually
computing with — the property out-of-core execution needs.  Completed
products are delivered through an optional ``sink(key, result)``
callback (always invoked from the caller's thread); without a sink the
products come back as a list aligned with the input groups.

Three schedulers are bundled:

* ``serial``  — compute groups inline (the reference executor);
* ``threads`` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`;
  NumPy's kernels release the GIL on the word/array operations, so the
  bitset and dense backends genuinely overlap;
* ``process`` — a shared :class:`~concurrent.futures.ProcessPoolExecutor`.
  Tiles cross the pipe as **payloads** — plain tuples of raw word/bool/
  index buffers produced by :meth:`MatrixBackend.tile_payload` — never as
  pickled matrix objects, so the IPC cost is the buffer bytes, not a
  Python object graph.  Payloads come from ``source.payload(key)``: the
  tile store memoizes them per content version (only tiles that changed
  last round re-encode) and serves spilled tiles straight from their
  file bytes, so the parent never re-materializes a cold tile just to
  ship it.  With a sink, the results are delivered **as payloads** too
  (the caller stages them un-materialized).

``resolve_scheduler(None)`` honours the ``REPRO_SCHEDULER`` environment
variable (CI runs the tier-1 suite with ``REPRO_SCHEDULER=process`` to
catch pickling/ownership bugs) and falls back to ``serial``.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing
import os
from concurrent.futures import (Executor, ProcessPoolExecutor,
                                ThreadPoolExecutor, as_completed)

from ..errors import UnknownSchedulerError
from ..matrices.base import BooleanMatrix, get_backend
from ..obs.trace import get_tracer

#: Environment variable supplying the default scheduler name.
SCHEDULER_ENV = "REPRO_SCHEDULER"


def compute_group(pairs) -> BooleanMatrix:
    """Run one group's mul-accumulate chain; returns the product tile.

    Accumulation uses ``union_update`` on the freshly-owned first
    product (matching the historical ``blocked_multiply`` accumulator
    semantics — for annotated tiles that is the semiring cell merge).
    """
    accumulator = None
    for left, right in pairs:
        product = left.multiply(right)
        if accumulator is None:
            accumulator = product
        elif accumulator.supports_inplace:
            accumulator.union_update(product)
        else:
            accumulator = accumulator.union(product)
    return accumulator


def tile_payload_of(matrix: BooleanMatrix) -> tuple:
    """Serialize *matrix* through its backend's payload hook."""
    backend_name = matrix.backend_name
    if backend_name == "annotated":
        from .semiring import AnnotatedBackend

        return AnnotatedBackend(matrix.semiring).tile_payload(matrix)
    if backend_name == "abstract":
        # Third-party matrix types without a registered backend travel
        # as generic coordinate payloads (rebuilt on the pyset backend).
        rows, cols = matrix.shape
        return ("pyset", rows, cols, tuple(matrix.nonzero_pairs()))
    return get_backend(backend_name).tile_payload(matrix)


def matrix_from_payload(payload: tuple) -> BooleanMatrix:
    """Rebuild a tile from any backend's payload (worker-side entry)."""
    kind = payload[0]
    if kind == "annotated":
        from .semiring import annotated_tile_from_payload

        return annotated_tile_from_payload(payload)
    return get_backend(kind).tile_from_payload(payload)


def _compute_group_from_payloads(pair_payloads) -> tuple:
    """Process-pool worker: deserialize, compute, reserialize."""
    pairs = [
        (matrix_from_payload(left), matrix_from_payload(right))
        for left, right in pair_payloads
    ]
    return tile_payload_of(compute_group(pairs))


def _compute_group_from_payloads_traced(item) -> tuple:
    """Traced process-pool worker: like
    :func:`_compute_group_from_payloads`, but runs the group inside a
    ``tile.group`` span recorded by a throwaway worker-local tracer and
    ships the finished span records back *next to* the payload — spans
    cannot cross the pipe live, so they travel the same channel as the
    result and the parent splices them in with ``Tracer.ingest``."""
    from ..obs.trace import MemorySink, Tracer

    parent_ref, tasks, pair_payloads = item
    sink = MemorySink()
    tracer = Tracer(sink)
    with tracer.span("tile.group", parent_ref=parent_ref,
                     scheduler="process", tasks=tasks):
        payload = _compute_group_from_payloads(pair_payloads)
    return payload, sink.drain()


class TileSource:
    """Where schedulers read operand tiles from.

    ``tile(key)`` materializes a tile, ``payload(key)`` returns its
    encoded wire form (the process scheduler's input), and
    ``pinned(keys)`` marks keys non-evictable for the duration of a
    computation (a no-op for in-memory sources).
    """

    def tile(self, key) -> BooleanMatrix:
        raise NotImplementedError

    def payload(self, key) -> tuple:
        raise NotImplementedError

    def pinned(self, keys):
        return contextlib.nullcontext()


class MappingTileSource(TileSource):
    """A :class:`TileSource` over a plain ``{key: matrix}`` mapping,
    with payload memoization (everything is resident, nothing pins)."""

    def __init__(self, tiles: dict):
        self._tiles = tiles
        self._payloads: dict = {}

    def tile(self, key) -> BooleanMatrix:
        return self._tiles[key]

    def payload(self, key) -> tuple:
        payload = self._payloads.get(key)
        if payload is None:
            payload = tile_payload_of(self._tiles[key])
            self._payloads[key] = payload
        return payload


def _operand_keys(pair_keys) -> list:
    return [key for pair in pair_keys for key in pair]


class TileScheduler:
    """Executes a list of tile-task groups.

    ``run(groups, source, sink=None)`` takes ``[(key, [(left_key,
    right_key), ...]), ...]`` — operand tiles are referenced by key into
    *source*.  Without *sink* the product tiles are returned as a list
    aligned with the input; with *sink* each completed product is
    delivered as ``sink(key, result)`` from the caller's thread (the
    process scheduler delivers payload tuples, the others matrices).
    The caller owns merge order either way, so a scheduler can complete
    work in any order it likes.
    """

    name = "abstract"

    def run(self, groups, source: TileSource, sink=None) -> "list | None":
        raise NotImplementedError


class SerialScheduler(TileScheduler):
    """In-process reference executor."""

    name = "serial"

    def run(self, groups, source: TileSource, sink=None) -> "list | None":
        tracer = get_tracer()
        results = [] if sink is None else None
        for key, pair_keys in groups:
            with tracer.span("tile.group", scheduler=self.name,
                             tasks=len(pair_keys)), \
                    source.pinned(_operand_keys(pair_keys)):
                product = compute_group(
                    (source.tile(left), source.tile(right))
                    for left, right in pair_keys
                )
            if sink is None:
                results.append(product)
            else:
                sink(key, product)
        return results


def _pool_workers() -> int:
    return max(1, min(os.cpu_count() or 1, 8))


class ThreadScheduler(TileScheduler):
    """Shared thread pool; tiles are passed by reference (no copies).

    Safe because the blocked round is a compute/merge barrier: no tile
    mutates while any group still reads it.
    """

    name = "threads"

    def __init__(self) -> None:
        self._executor: Executor | None = None

    def _pool(self) -> Executor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=_pool_workers(),
                thread_name_prefix="repro-tile",
            )
            atexit.register(self._executor.shutdown)
        return self._executor

    def run(self, groups, source: TileSource, sink=None) -> "list | None":
        if len(groups) <= 1:
            return SerialScheduler().run(groups, source, sink)

        # Pool workers run in their own long-lived contexts, so the
        # submitter's span does not propagate implicitly; capture its
        # ref here and parent every group span on it explicitly.
        tracer = get_tracer()
        parent_ref = tracer.current_ref()

        def compute(item):
            _key, pair_keys = item
            with tracer.span("tile.group", parent_ref=parent_ref,
                             scheduler="threads",
                             tasks=len(pair_keys)), \
                    source.pinned(_operand_keys(pair_keys)):
                return compute_group(
                    (source.tile(left), source.tile(right))
                    for left, right in pair_keys
                )

        pool = self._pool()
        if sink is None:
            return list(pool.map(compute, groups))
        futures = {pool.submit(compute, item): item[0] for item in groups}
        for future in as_completed(futures):
            sink(futures[future], future.result())
        return None


class ProcessScheduler(TileScheduler):
    """Shared process pool; tiles cross the pipe as raw-buffer payloads.

    The pool is created lazily and reused across closure runs (worker
    start-up is far more expensive than a round), and the chunked map
    amortizes IPC over several groups per message.  The ``fork`` start
    method is preferred when the platform offers it, so that runtime
    registrations (:func:`repro.core.semiring.register_semiring`,
    custom backends) are inherited by the workers; under ``spawn``
    (e.g. macOS default) workers re-import the library and only the
    bundled backends/semirings resolve.
    """

    name = "process"

    def __init__(self) -> None:
        self._executor: Executor | None = None

    def _pool(self) -> Executor:
        if self._executor is None:
            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._executor = ProcessPoolExecutor(
                max_workers=_pool_workers(),
                mp_context=context,
            )
            atexit.register(self._executor.shutdown)
        return self._executor

    def run(self, groups, source: TileSource, sink=None) -> "list | None":
        if len(groups) <= 1:
            return SerialScheduler().run(groups, source, sink)
        # Operand payloads come from the source's version-keyed cache:
        # a tile shared by many groups (or unchanged since last round)
        # encodes once, and spilled tiles ship straight from disk.
        payloads = [
            tuple((source.payload(left), source.payload(right))
                  for left, right in pair_keys)
            for _key, pair_keys in groups
        ]
        chunksize = max(1, len(payloads) // (4 * _pool_workers()))
        tracer = get_tracer()
        if tracer.enabled:
            # Workers trace into a local buffer and ship the span
            # records back beside each payload; splice them in here so
            # the tree parents onto the submitting span.
            parent_ref = tracer.current_ref()
            items = [
                (parent_ref, len(pair_keys), payload_group)
                for (_key, pair_keys), payload_group in zip(groups, payloads)
            ]
            traced_results = self._pool().map(
                _compute_group_from_payloads_traced, items,
                chunksize=chunksize,
            )
            results = []
            for payload, span_records in traced_results:
                tracer.ingest(span_records)
                results.append(payload)
        else:
            results = self._pool().map(_compute_group_from_payloads,
                                       payloads, chunksize=chunksize)
        if sink is None:
            return [matrix_from_payload(result) for result in results]
        for (key, _pair_keys), result in zip(groups, results):
            sink(key, result)
        return None


_SCHEDULERS: dict[str, TileScheduler] = {}


def register_scheduler(scheduler: TileScheduler) -> TileScheduler:
    """Register *scheduler* under ``scheduler.name`` (idempotent)."""
    _SCHEDULERS[scheduler.name] = scheduler
    return scheduler


def available_schedulers() -> list[str]:
    """Names of all registered tile schedulers."""
    return sorted(_SCHEDULERS)


def resolve_scheduler(name: "str | TileScheduler | None") -> TileScheduler:
    """Resolve a scheduler by name; None → ``$REPRO_SCHEDULER`` → serial."""
    if isinstance(name, TileScheduler):
        return name
    if name is None:
        name = os.environ.get(SCHEDULER_ENV) or "serial"
    try:
        return _SCHEDULERS[name]
    except KeyError:
        raise UnknownSchedulerError(name, list(_SCHEDULERS)) from None


register_scheduler(SerialScheduler())
register_scheduler(ThreadScheduler())
register_scheduler(ProcessScheduler())

#: The scheduler names bundled with the library.
SCHEDULERS = ("serial", "threads", "process")
