"""Write-ahead tick log: the replication backbone of the serving tier.

A :class:`TickLog` is an append-only JSONL file of **coalesced update
ticks**.  The leader appends every tick *before* applying it
(write-ahead), followers tail the file and replay the same ticks through
the same :meth:`QueryService.tick
<repro.service.query_service.QueryService.tick>` code — and because
ticks are deterministic (last-op-per-edge coalescing, one DRed pass +
one frontier run), a follower that loads the leader's snapshot and
replays its log converges to a byte-identical index.

Record format — one JSON object per line::

    {"kind": "tick",   "seq": 7, "ops": [["insert", 0, "a", 1],
                                         ["delete", "u", "b", "v"]]}
    {"kind": "anchor", "seq": 7, "snapshot": "index.snapshot"}

* ``seq`` is a strictly increasing sequence number, starting at 1; an
  ``anchor`` record marks that a snapshot captured the state *after*
  applying every tick with ``seq <=`` its own, so
  :meth:`TickLog.truncate` may drop those ticks (snapshot-anchored
  truncation — the log never needs to outgrow one snapshot interval).
* Edge endpoints are JSON scalars — the protocol's node coercion
  (int/str twins) runs on the leader *before* logging, so followers
  replay exactly the edges the leader applied.

Durability is a policy, not a constant (``fsync=``):

* ``"always"`` — ``fsync`` after every append: a tick acknowledged to a
  client survives power loss;
* ``"batch"`` (default) — ``fsync`` every :attr:`TickLog.fsync_interval`
  appends and on :meth:`flush`/:meth:`close`: bounded loss window,
  near-zero per-tick cost;
* ``"never"`` — leave durability to the OS page cache.

Every append is *flushed* to the OS regardless of policy so a tailing
follower on the same host observes records promptly.

Crash tolerance: a process killed mid-append leaves a partial final
line.  Opening the log for writing trims it; a tailing reader simply
ignores a partial tail and retries on the next poll.  Corruption
anywhere *before* the tail raises :class:`~repro.errors.WALError`.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Iterator

from ..errors import WALError
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer, stopwatch

__all__ = ["TickLog", "TickLogReader", "encode_ops", "decode_ops"]

#: Edge-update op as it travels through the log: ("insert"|"delete",
#: (source, label, target)).
TickOp = "tuple[str, tuple]"

_KINDS = ("tick", "anchor")


def encode_ops(ops: Iterable[tuple]) -> list:
    """Flatten ``("insert", (s, label, t))`` pairs to the JSON record
    shape ``["insert", s, label, t]`` (the protocol's interleaved-op
    form), validating shape and kind so a malformed op fails *before*
    it is written into the replicated history."""
    encoded = []
    for op in ops:
        try:
            kind, (source, label, target) = op
        except (TypeError, ValueError):
            raise WALError(f"malformed tick op {op!r}; expected "
                           "(kind, (source, label, target))") from None
        if kind not in ("insert", "delete"):
            raise WALError(f"unknown tick op kind {kind!r}; expected "
                           "'insert' or 'delete'")
        if not isinstance(label, str):
            raise WALError(f"edge label must be a string, got {label!r}")
        encoded.append([kind, source, label, target])
    return encoded


def decode_ops(encoded: Iterable) -> list:
    """Inverse of :func:`encode_ops`."""
    return [(kind, (source, label, target))
            for kind, source, label, target in encoded]


def _parse_record(line: str, path: str, line_number: int) -> dict:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise WALError(
            f"{path}:{line_number}: corrupt WAL record: {error}"
        ) from error
    if not isinstance(record, dict) or record.get("kind") not in _KINDS \
            or not isinstance(record.get("seq"), int):
        raise WALError(
            f"{path}:{line_number}: not a WAL record: {line[:120]!r}"
        )
    return record


class TickLogReader:
    """Tail a tick log: each :meth:`poll` yields the tick records that
    became visible since the last poll.

    The reader survives leader-side truncation (the file is atomically
    rewritten): it detects the replacement via inode change and re-scans
    from the top, skipping everything at or below the highest sequence
    it already delivered.  A partial final line (a concurrent append
    caught mid-write) is held back until it completes.
    """

    def __init__(self, path: str, after_seq: int = 0):
        self.path = path
        self._seq = after_seq
        self._offset = 0
        self._inode: "int | None" = None

    @property
    def last_seq(self) -> int:
        """Highest tick sequence delivered so far."""
        return self._seq

    def poll(self) -> list[tuple[int, list]]:
        """Return new ``(seq, ops)`` tick pairs, oldest first.

        Missing file → no records yet (the leader may not have opened
        the log); anchor records are consumed silently (they carry no
        state to replay)."""
        try:
            stream = open(self.path, "rb")
        except FileNotFoundError:
            return []
        ticks: list[tuple[int, list]] = []
        with stream:
            inode = os.fstat(stream.fileno()).st_ino
            if inode != self._inode:
                # New or rewritten (truncated) file: re-scan from the
                # top; the seq filter below drops already-applied ticks.
                self._inode = inode
                self._offset = 0
            stream.seek(self._offset)
            line_number = 0
            while True:
                position = stream.tell()
                raw = stream.readline()
                line_number += 1
                if not raw:
                    break
                if not raw.endswith(b"\n"):
                    # Partial tail: an append in progress.  Leave the
                    # offset before it so the next poll retries.
                    break
                self._offset = position + len(raw)
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                record = _parse_record(line, self.path, line_number)
                if record["seq"] <= self._seq:
                    continue
                if record["kind"] == "tick":
                    ticks.append((record["seq"], record["ops"]))
                    self._seq = record["seq"]
        return ticks


class TickLog:
    """The leader's append side of the write-ahead tick log.

    Opening recovers the existing file: the tail is scanned for the last
    sequence number and anchor, and a partial final line (crash
    mid-append) is trimmed off.  ``fsync`` picks the durability policy
    (see the module docstring)."""

    def __init__(self, path: str, fsync: str = "batch",
                 fsync_interval: int = 32):
        if fsync not in ("always", "batch", "never"):
            raise WALError(f"unknown fsync policy {fsync!r}; expected "
                           "'always', 'batch' or 'never'")
        self.path = path
        self.fsync = fsync
        self.fsync_interval = max(1, fsync_interval)
        self._unsynced = 0
        self._last_seq = 0
        self._anchor_seq = 0
        self._recover()
        self._stream = open(path, "ab")

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        try:
            stream = open(self.path, "r+b")
        except FileNotFoundError:
            return
        with stream:
            line_number = 0
            while True:
                position = stream.tell()
                raw = stream.readline()
                line_number += 1
                if not raw:
                    break
                if not raw.endswith(b"\n"):
                    # Partial tail from a crash mid-append: trim it so
                    # the next append starts on a record boundary.
                    stream.truncate(position)
                    break
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                record = _parse_record(line, self.path, line_number)
                if record["seq"] < self._last_seq:
                    raise WALError(
                        f"{self.path}:{line_number}: sequence went "
                        f"backwards ({record['seq']} after "
                        f"{self._last_seq})"
                    )
                self._last_seq = max(self._last_seq, record["seq"])
                if record["kind"] == "anchor":
                    self._anchor_seq = record["seq"]

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent record."""
        return self._last_seq

    @property
    def anchor_seq(self) -> int:
        """Highest sequence a snapshot is recorded to have captured."""
        return self._anchor_seq

    def append(self, ops: Iterable[tuple]) -> int:
        """Append one tick of *ops* (already-validated protocol pairs);
        returns its sequence number.  The record is flushed to the OS
        before returning; fsync follows the policy."""
        encoded = encode_ops(ops)
        seq = self._last_seq + 1
        self._write({"kind": "tick", "seq": seq, "ops": encoded})
        self._last_seq = seq
        return seq

    def anchor(self, snapshot: str, seq: "int | None" = None) -> int:
        """Record that *snapshot* captured the state after tick *seq*
        (default: every tick so far).  Enables :meth:`truncate`."""
        if seq is None:
            seq = self._last_seq
        if seq > self._last_seq:
            raise WALError(f"cannot anchor at seq {seq}: log only "
                           f"reaches {self._last_seq}")
        self._write({"kind": "anchor", "seq": seq, "snapshot": snapshot})
        self._anchor_seq = max(self._anchor_seq, seq)
        return seq

    def _write(self, record: dict) -> None:
        with get_tracer().span("wal.append", kind=record["kind"],
                               seq=record["seq"]):
            self._stream.write(json.dumps(record).encode("utf-8") + b"\n")
            self._stream.flush()
            self._unsynced += 1
            if self.fsync == "always" or (
                    self.fsync == "batch"
                    and self._unsynced >= self.fsync_interval):
                self._fsync()
        get_registry().counter(
            "repro_wal_appends_total", "WAL records appended", ("kind",)
        ).inc(kind=record["kind"])

    def _fsync(self) -> None:
        if self._unsynced:
            with get_tracer().span("wal.fsync"), stopwatch() as timer:
                os.fsync(self._stream.fileno())
            self._unsynced = 0
            registry = get_registry()
            registry.counter(
                "repro_wal_fsyncs_total", "WAL fsync calls"
            ).inc()
            registry.histogram(
                "repro_wal_fsync_seconds", "WAL fsync latency"
            ).observe(timer.elapsed)

    def flush(self) -> None:
        """Force the log durable regardless of policy (``"never"``
        included — an explicit flush is always honoured)."""
        self._stream.flush()
        self._fsync()

    def close(self) -> None:
        if self._stream.closed:
            return
        self.flush()
        self._stream.close()

    def __enter__(self) -> "TickLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading / truncation
    # ------------------------------------------------------------------
    def records(self, after_seq: int = 0) -> Iterator[tuple[int, list]]:
        """Iterate ``(seq, ops)`` of tick records with ``seq >
        after_seq`` — the leader-recovery replay path."""
        self._stream.flush()
        reader = TickLogReader(self.path, after_seq=after_seq)
        yield from reader.poll()

    def truncate(self, snapshot: "str | None" = None,
                 seq: "int | None" = None) -> int:
        """Drop every record at or below the anchor; returns how many
        tick records were dropped.

        With *snapshot* (and optionally *seq*), a fresh anchor is
        recorded first — ``truncate(snapshot=path)`` is the one-call
        "snapshot taken, shrink the log" maneuver.  The file is
        rewritten atomically (write temp + rename) so a concurrent
        :class:`TickLogReader` never observes a half-truncated log.
        """
        if snapshot is not None:
            self.anchor(snapshot, seq=seq)
        anchor = self._anchor_seq
        self.flush()
        kept: list[dict] = [{"kind": "anchor", "seq": anchor,
                             "snapshot": snapshot or ""}] if anchor else []
        dropped = 0
        with open(self.path, "rb") as stream:
            line_number = 0
            for raw in stream:
                line_number += 1
                if not raw.endswith(b"\n"):
                    break
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                record = _parse_record(line, self.path, line_number)
                if record["kind"] != "tick":
                    continue
                if record["seq"] <= anchor:
                    dropped += 1
                else:
                    kept.append(record)
        temp_path = self.path + ".truncating"
        with open(temp_path, "wb") as stream:
            for record in kept:
                stream.write(json.dumps(record).encode("utf-8") + b"\n")
            stream.flush()
            os.fsync(stream.fileno())
        self._stream.close()
        os.replace(temp_path, self.path)
        self._stream = open(self.path, "ab")
        self._unsynced = 0
        return dropped
