"""Persistent index store and query service layer.

The solver stack (:mod:`repro.core`) answers one query fast; this
package turns it into something a process can *serve*:

* :mod:`repro.service.snapshot` — save/load a fully solved index (graph
  node map, grammar, per-non-terminal matrices via the backend payload
  codec, length/witness annotations, incremental support sets) in a
  versioned on-disk format, so engines warm-start in O(load) instead of
  O(solve);
* :mod:`repro.service.query_service` — a session object wrapping the
  engine and the batch-incremental solver behind an LRU result cache
  with fine-grained invalidation (driven by the closure's exact deltas)
  and coalesced update ticks (one DRed pass + one insertion frontier
  run per tick);
* :mod:`repro.service.server` — a JSONL request loop over stdio and an
  asyncio TCP transport (``repro-cfpq serve``) with reader/writer
  locking so queries always see a consistent snapshot during ticks;
* :mod:`repro.service.wal` / :mod:`repro.service.replica` — the
  replicated tier: a write-ahead tick log on the leader, follower
  replicas that replay it to a byte-identical index, reads fanned out
  across replicas while the leader owns writes.
"""

from .query_service import QueryService, TickReport
from .replica import FollowerService, ReplicatedService, open_role
from .wal import TickLog, TickLogReader
from .snapshot import (
    SNAPSHOT_VERSION,
    load_engine_snapshot,
    read_snapshot,
    save_engine_snapshot,
    write_snapshot,
)

__all__ = [
    "QueryService",
    "TickReport",
    "TickLog",
    "TickLogReader",
    "ReplicatedService",
    "FollowerService",
    "open_role",
    "SNAPSHOT_VERSION",
    "load_engine_snapshot",
    "read_snapshot",
    "save_engine_snapshot",
    "write_snapshot",
]
