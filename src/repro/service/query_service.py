"""A query session over a live, mutating graph.

:class:`QueryService` wraps the batch-incremental solver
(:mod:`repro.core.incremental`) behind the three things a server needs
and the solver alone does not give:

* an **LRU result cache** keyed by ``(start, source, target,
  semantics)`` with **fine-grained invalidation**: an update tick drops
  only the entries whose answer could have moved, decided from the
  closure's *exact* per-non-terminal deltas
  (:attr:`~repro.core.incremental.IncrementalCFPQ.last_changes`) — a
  relational entry depends only on its own start matrix, a single-path
  entry on every non-terminal reachable from its start through the
  grammar rules;
* **coalesced update ticks**: an interleaved insert/delete stream is
  deduplicated per tick (last operation per edge wins — intermediate
  states within a tick are unobservable by construction) and applied as
  at most one ``remove_edges`` DRed pass plus one ``add_edges``
  frontier run;
* a **reader/writer lock**: any number of queries run concurrently and
  always see the fixpoint of a completed tick, never a half-applied
  update.

Construction is cold (one initial closure) unless a ``warm_state`` is
supplied — :meth:`QueryService.from_snapshot` restores one from the
snapshot store (:mod:`repro.service.snapshot`), making restart cost
O(load) with zero closure rounds.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable

from ..core.batch import BatchQuery, solve_batch
from ..core.incremental import IncrementalCFPQ, IncrementalSinglePathCFPQ
from ..core.matrix_cfpq import DEFAULT_STRATEGY
from ..core.path_index import AllPathIndex, LengthRank, ViterbiRank
from ..core.single_path import extract_path
from ..errors import ReproError, SemanticsError
from ..grammar.symbols import Nonterminal, Terminal
from ..graph.labeled_graph import Edge, LabeledGraph
from ..matrices.base import default_backend, get_backend
from ..obs.metrics import DEFAULT_SIZE_BUCKETS, get_registry
from ..obs.trace import get_tracer, stopwatch
from . import snapshot as snapshot_store


def _cache_requests_counter():
    """The per-semantics cache hit/miss counter (resolved at use time so
    a test-swapped registry is always honoured)."""
    return get_registry().counter(
        "repro_cache_requests_total",
        "Query cache lookups by semantics and outcome",
        ("semantics", "outcome"),
    )

#: Query semantics the service caches and serves.
SERVICE_SEMANTICS = ("relational", "single-path", "length")

#: Ranking semirings :meth:`QueryService.top_k` serves: shortest-first
#: (length) or most-probable-first (viterbi, max-product over per-label
#: weights).  Selected per service via the ``semiring`` constructor
#: argument or the ``REPRO_SERVICE_SEMIRING`` environment variable.
SERVICE_SEMIRINGS = ("length", "viterbi")

#: Default LRU capacity.
DEFAULT_CACHE_SIZE = 1024

#: Minimum stacked-row padding of the cached batch matrices: batches up
#: to this many mask rows reuse the cached padding instead of forcing a
#: rebuild at a larger size.
DEFAULT_BATCH_CAPACITY = 64

#: Exceptions :meth:`QueryService.query_batch` converts into per-item
#: results instead of failing the whole batch (mirrors the server's
#: error envelope).
BATCH_ITEM_ERRORS = (ReproError, ValueError, KeyError, TypeError)


class _KBestStream:
    """One cached k-best enumeration: the materialized best-first prefix
    plus the live lazy iterator that extends it on demand.

    Pagination re-reads the prefix and only advances the iterator for
    genuinely new ranks, so a cursor walk over a cached stream never
    re-enumerates — and the full path set is never materialized."""

    def __init__(self, iterator) -> None:
        self._iterator = iterator
        self._prefix: list = []
        self._exhausted = False
        self._lock = threading.Lock()

    def page(self, cursor: int, k: int) -> tuple[list, int, bool]:
        """Paths ``[cursor, cursor + k)`` in rank order, the follow-up
        cursor, and whether the stream is exhausted at that cursor."""
        needed = cursor + k
        with self._lock:
            while len(self._prefix) < needed and not self._exhausted:
                try:
                    self._prefix.append(next(self._iterator))
                except StopIteration:
                    self._exhausted = True
            page = list(self._prefix[cursor:needed])
            next_cursor = cursor + len(page)
            exhausted = self._exhausted and next_cursor >= len(self._prefix)
            return page, next_cursor, exhausted


class ReadWriteLock:
    """A writer-preferring reader/writer lock.

    Readers share; a writer excludes everyone.  Pending writers block
    new readers so a steady query stream cannot starve update ticks.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def reading(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def writing(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


@dataclass(frozen=True)
class TickReport:
    """Outcome of one coalesced update tick."""

    inserts_requested: int
    deletes_requested: int
    inserts_applied: int
    deletes_applied: int
    coalesced_away: int
    facts_added: int
    facts_removed: int
    dred_passes: int
    frontier_runs: int
    changed_nonterminals: tuple[str, ...] = ()
    invalidated_entries: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "inserts_requested": self.inserts_requested,
            "deletes_requested": self.deletes_requested,
            "inserts_applied": self.inserts_applied,
            "deletes_applied": self.deletes_applied,
            "coalesced_away": self.coalesced_away,
            "facts_added": self.facts_added,
            "facts_removed": self.facts_removed,
            "dred_passes": self.dred_passes,
            "frontier_runs": self.frontier_runs,
            "changed_nonterminals": list(self.changed_nonterminals),
            "invalidated_entries": self.invalidated_entries,
            "seconds": round(self.seconds, 6),
        }


class QueryService:
    """A thread-safe, cached CFPQ session over one (graph, grammar).

    Parameters
    ----------
    graph, grammar:
        The data and the query language; the grammar is normalized once.
    backend, strategy, strategy_options:
        Closure configuration, as on :class:`~repro.core.engine.CFPQEngine`.
    cache_size:
        LRU capacity (entries).
    single_path:
        Maintain length annotations incrementally so ``single-path`` and
        ``length`` queries are served; costs the annotated closure at
        startup (or a snapshot's lengths) and per tick.
    warm_state:
        A solver state produced by ``export_state`` — skips the initial
        closure entirely (see :meth:`from_snapshot`).
    """

    def __init__(self, graph: LabeledGraph, grammar, backend: str | None = None,
                 strategy: str = DEFAULT_STRATEGY,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 single_path: bool = False,
                 warm_state: dict | None = None,
                 semiring: str | None = None,
                 **strategy_options):
        self.backend = backend or default_backend()
        self.strategy = strategy
        self.single_path = single_path
        self.strategy_options = strategy_options
        self.semiring = (semiring
                         or os.environ.get("REPRO_SERVICE_SEMIRING")
                         or "length").strip().lower()
        if self.semiring not in SERVICE_SEMIRINGS:
            raise SemanticsError(
                f"unknown service semiring {self.semiring!r}; expected one "
                f"of {SERVICE_SEMIRINGS}")
        with get_tracer().span("service.startup",
                               warm=warm_state is not None), \
                stopwatch() as startup_timer:
            if single_path:
                self.solver: IncrementalCFPQ = IncrementalSinglePathCFPQ(
                    graph, grammar, strategy=strategy,
                    warm_state=warm_state, **strategy_options,
                )
            else:
                self.solver = IncrementalCFPQ(
                    graph, grammar, backend=self.backend, strategy=strategy,
                    warm_state=warm_state, **strategy_options,
                )
        self._startup_seconds = startup_timer.elapsed
        self._warm_started = warm_state is not None

        self._lock = ReadWriteLock()
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        self._cache_size = max(1, cache_size)
        self._cache_lock = threading.Lock()
        self._sp_index = None
        self._forest = None
        self._kbest_cache: OrderedDict[tuple, _KBestStream] = OrderedDict()
        self._kbest_lock = threading.Lock()
        self._topk_queries = 0
        self._topk_stream_hits = 0
        self._capture = threading.local()
        self._snapshot_meta: dict = {}

        # Rule graph for dependency closures: head -> body non-terminals.
        self._rule_bodies: dict[Nonterminal, set[Nonterminal]] = {}
        for rule in self.solver.grammar.binary_rules:
            self._rule_bodies.setdefault(rule.head, set()).update(rule.body)
        self._deps_cache: dict[Nonterminal, frozenset[Nonterminal]] = {}

        self._queries = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._ticks = 0
        self._ops_requested = 0
        self._ops_coalesced_away = 0
        self._dred_passes = 0
        self._frontier_runs = 0
        self._tick_seconds_last = 0.0
        self._tick_seconds_total = 0.0
        self._snapshot_bytes = 0

        # Padded per-nonterminal matrices for the warm batched path:
        # closed facts at size (n + capacity) so a batch's mask rows fit
        # without rebuilding.  Invalidated per-NT by tick().
        self._batch_matrices: dict[Nonterminal, object] = {}
        self._batch_capacity = 0
        self._batch_nodes = -1
        self._batch_lock = threading.Lock()
        self._batched_queries = 0
        self._batch_closures = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_engine(cls, engine, cache_size: int = DEFAULT_CACHE_SIZE,
                    single_path: bool = False) -> "QueryService":
        """Wrap an already-solved engine: its cached closure seeds the
        incremental solver, so no work is repeated."""
        warm_state: dict = {
            "facts": {
                nonterminal: set(matrix.nonzero_pairs())
                for nonterminal, matrix in engine.solve().matrices.items()
            },
        }
        if single_path:
            index = engine.single_path_index()
            warm_state["lengths"] = {
                (nonterminal, i, j): length
                for (i, j), entries in index.cells.items()
                for nonterminal, length in entries.items()
            }
        return cls(engine.graph, engine.grammar, backend=engine.backend,
                   strategy=engine.strategy, cache_size=cache_size,
                   single_path=single_path, warm_state=warm_state,
                   **engine.strategy_options)

    @classmethod
    def from_snapshot(cls, path: str, backend: str | None = None,
                      strategy: str | None = None,
                      cache_size: int = DEFAULT_CACHE_SIZE,
                      single_path: bool | None = None,
                      **strategy_options) -> "QueryService":
        """Warm-start a service from a snapshot file.

        Both service snapshots (:meth:`save_snapshot`) and engine
        snapshots (:func:`repro.service.snapshot.save_engine_snapshot`)
        are accepted: the solver seeds from the stored fact/length sets
        and runs **zero** closure rounds.  *single_path* defaults to
        whatever the snapshot can support losslessly.
        """
        payload = snapshot_store.read_snapshot(path)
        graph = snapshot_store.decode_graph(payload["graph"])
        grammar = snapshot_store.decode_grammar(payload["grammar"])

        warm_state: dict | None = None
        if "incremental" in payload:
            warm_state = snapshot_store.decode_incremental_state(
                payload["incremental"]
            )
        elif "relational" in payload:
            # Stream the decode: each matrix materializes once, its fact
            # set is extracted, and the matrix is dropped before the
            # next decodes — the matrices never all coexist here.
            facts: dict[Nonterminal, set] = {}
            for nonterminal, matrix in snapshot_store.iter_decoded_matrices(
                    payload["relational"]["matrices"]):
                facts[nonterminal] = set(matrix.nonzero_pairs())
            warm_state = {"facts": facts}
            if "length" in payload:
                warm_state["lengths"] = {
                    (nonterminal, i, j): length
                    for nonterminal, matrix in
                    snapshot_store.decode_annotated_matrices(
                        payload["length"]).items()
                    for i, j, length in matrix.nonzero_cells()
                }
        if single_path is None:
            single_path = bool(warm_state) and "lengths" in warm_state
        if single_path and warm_state is not None \
                and "lengths" not in warm_state:
            warm_state = None  # snapshot has no lengths: solve cold
        service = cls(graph, grammar,
                      backend=backend or payload.get("backend"),
                      strategy=strategy or payload.get("strategy")
                      or DEFAULT_STRATEGY,
                      cache_size=cache_size, single_path=single_path,
                      warm_state=warm_state, **strategy_options)
        service._snapshot_bytes = os.path.getsize(path)
        service._snapshot_meta = {"wal_seq": payload.get("wal_seq", 0)}
        return service

    @property
    def snapshot_meta(self) -> dict:
        """Serving-layer metadata carried by the snapshot this service
        warm-started from — notably ``wal_seq``, the write-ahead-log
        sequence the snapshot state includes (0 when absent), which is
        where a follower resumes replay."""
        return dict(self._snapshot_meta)

    def save_snapshot(self, path: str, extra: "dict | None" = None) -> int:
        """Persist the current fixpoint (facts, lengths, DRed supports)
        plus the relational matrices, so both :meth:`from_snapshot` and
        :meth:`CFPQEngine.from_snapshot <repro.core.engine.CFPQEngine.from_snapshot>`
        can warm-start from it.  Returns the snapshot size in bytes.

        The encoding is canonical (every set/dict iteration sorted,
        matrices built from sorted pair lists): two processes holding
        the same logical state write byte-identical files, which is how
        the replicated tier proves a follower converged.  *extra* merges
        additional plain-container keys into the payload (the leader
        stamps ``wal_seq``)."""
        from ..matrices.base import get_backend

        with self._lock.reading():
            solver = self.solver
            n = solver.graph.node_count
            backend = get_backend(self.backend)
            payload = {
                "graph": snapshot_store.encode_graph(solver.graph),
                "grammar": snapshot_store.encode_grammar(solver.grammar),
                "backend": backend.name,
                "strategy": self.strategy,
                "incremental": snapshot_store.encode_incremental_state(
                    solver.export_state()
                ),
                "relational": {
                    "matrices": snapshot_store.encode_boolean_matrices(
                        {
                            nonterminal: backend.from_pairs(
                                n, sorted(solver.pairs(nonterminal))
                            )
                            for nonterminal in solver.grammar.nonterminals
                        },
                        backend,
                    ),
                },
            }
            if extra:
                payload.update(extra)
            size = snapshot_store.write_snapshot(path, payload)
            self._snapshot_bytes = size
            self._maybe_capture_stats()
        return size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> LabeledGraph:
        return self.solver.graph

    def query(self, start, source: Hashable = None, target: Hashable = None,
              semantics: str = "relational"):
        """Answer one query, serving repeats from the LRU cache.

        * ``relational`` with no endpoints: the full relation as node
          pairs; with both endpoints: a membership bool.
        * ``single-path`` (both endpoints): one witness path as
          ``(source, label, target)`` node triples; raises
          :class:`~repro.errors.PathNotFoundError` when absent.
        * ``length`` (both endpoints): the minimal witness length, or
          None.
        """
        key = (str(start), source, target, semantics)
        with self._lock.reading():
            hit = False
            value: object = None
            with self._cache_lock:
                self._queries += 1
                if key in self._cache:
                    self._hits += 1
                    self._cache.move_to_end(key)
                    value = self._cache[key]
                    hit = True
                else:
                    self._misses += 1
            _cache_requests_counter().inc(
                semantics=semantics, outcome="hit" if hit else "miss")
            if not hit:
                value = self._evaluate(start, source, target, semantics)
                with self._cache_lock:
                    self._cache[key] = value
                    self._cache.move_to_end(key)
                    while len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
                        self._evictions += 1
            self._maybe_capture_stats()
            return value

    def query_batch(self, queries: Iterable) -> list:
        """Answer many queries under **one** read-lock acquisition.

        Each item is a ``(start, source, target, semantics)`` tuple
        (trailing elements optional) or a dict with those keys.  The
        answers come back in input order; an item that fails raises
        nothing — its slot holds the exception instance, so one bad
        query never poisons the batch.

        The batch is partitioned three ways:

        * **cache hits** are served from the LRU directly;
        * **maskable residue** — relational membership probes (both
          endpoints given) — is compiled into *one*
          :func:`~repro.core.batch.solve_batch` warm run over the
          cached padded closure matrices, one stacked mask row per
          probe;
        * everything else evaluates per-item exactly as :meth:`query`.

        Every computed answer populates the LRU under its single-query
        key, so the existing per-nonterminal tick invalidation applies
        unchanged.
        """
        items: list = []
        for query in queries:
            try:
                items.append(self._coerce_batch_item(query))
            except BATCH_ITEM_ERRORS as exc:
                items.append(exc)
        results: list = [None] * len(items)
        get_registry().histogram(
            "repro_batch_occupancy", "Queries answered per batch call",
            buckets=DEFAULT_SIZE_BUCKETS,
        ).observe(len(items))
        with self._lock.reading():
            residue: list[tuple[int, tuple, tuple]] = []
            cache_outcomes: list[tuple[str, str]] = []
            with self._cache_lock:
                for index, item in enumerate(items):
                    if isinstance(item, Exception):
                        results[index] = item
                        continue
                    self._queries += 1
                    self._batched_queries += 1
                    key = (str(item[0]), item[1], item[2], item[3])
                    if key in self._cache:
                        self._hits += 1
                        self._cache.move_to_end(key)
                        results[index] = self._cache[key]
                        cache_outcomes.append((item[3], "hit"))
                    else:
                        self._misses += 1
                        residue.append((index, key, item))
                        cache_outcomes.append((item[3], "miss"))
            requests_counter = _cache_requests_counter()
            for semantics, outcome in cache_outcomes:
                requests_counter.inc(semantics=semantics, outcome=outcome)

            maskable: list[tuple[int, tuple, BatchQuery]] = []
            to_cache: list[tuple[tuple, object]] = []
            graph = self.solver.graph
            for index, key, item in residue:
                start, source, target, semantics = item
                if (semantics == "relational" and source is not None
                        and target is not None):
                    try:
                        start_nt = start if isinstance(start, Nonterminal) \
                            else Nonterminal(str(start))
                        self.solver.grammar.require_nonterminal(start_nt)
                    except BATCH_ITEM_ERRORS as exc:
                        results[index] = exc
                        continue
                    if not (graph.has_node(source) and graph.has_node(target)):
                        results[index] = False
                        to_cache.append((key, False))
                        continue
                    maskable.append((index, key, BatchQuery(
                        start_nt,
                        sources=frozenset((source,)),
                        targets=frozenset((target,)),
                        semantics="membership",
                    )))
                else:
                    try:
                        value = self._evaluate(start, source, target,
                                               semantics)
                    except BATCH_ITEM_ERRORS as exc:
                        results[index] = exc
                        continue
                    results[index] = value
                    to_cache.append((key, value))

            if maskable:
                closed = self._closed_batch_matrices(len(maskable))
                answers = solve_batch(
                    graph, self.solver.grammar,
                    [query for _index, _key, query in maskable],
                    backend=self.backend, strategy=self.strategy,
                    normalize=False, closed_matrices=closed,
                    **self.strategy_options,
                )
                self._batch_closures += 1
                for (index, key, _query), answer in zip(maskable, answers):
                    results[index] = answer
                    to_cache.append((key, answer))

            if to_cache:
                with self._cache_lock:
                    for key, value in to_cache:
                        self._cache[key] = value
                        self._cache.move_to_end(key)
                    while len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
                        self._evictions += 1
            self._maybe_capture_stats()
            return results

    @staticmethod
    def _coerce_batch_item(query) -> tuple:
        """Normalize one batch item to ``(start, source, target,
        semantics)``."""
        if isinstance(query, dict):
            if "start" not in query:
                raise SemanticsError("batch query needs a 'start' key")
            return (query["start"], query.get("source"),
                    query.get("target"),
                    query.get("semantics", "relational"))
        spec = tuple(query)
        if not 1 <= len(spec) <= 4:
            raise SemanticsError(
                "batch query tuples take 1-4 elements "
                "(start[, source[, target[, semantics]]])"
            )
        padded = spec + (None,) * (3 - len(spec)) if len(spec) < 3 else spec
        if len(padded) == 3:
            padded = padded + ("relational",)
        return padded

    def _closed_batch_matrices(self, rows_needed: int) -> dict:
        """The solver's closed facts padded to ``n + capacity`` rows,
        cached per nonterminal so consecutive batches skip the rebuild.
        Called under the read lock; tick() (writer) invalidates changed
        nonterminals, so cached entries are always the current fixpoint.
        """
        solver = self.solver
        n = solver.graph.node_count
        with self._batch_lock:
            if self._batch_nodes != n or self._batch_capacity < rows_needed:
                self._batch_matrices.clear()
                self._batch_capacity = max(DEFAULT_BATCH_CAPACITY,
                                           rows_needed)
                self._batch_nodes = n
            size = n + self._batch_capacity
            backend = get_backend(self.backend)
            for nonterminal in solver.grammar.nonterminals:
                if nonterminal not in self._batch_matrices:
                    self._batch_matrices[nonterminal] = backend.from_pairs(
                        size, solver.pairs(nonterminal))
            return dict(self._batch_matrices)

    def _evaluate(self, start, source, target, semantics: str):
        start_nt = start if isinstance(start, Nonterminal) \
            else Nonterminal(str(start))
        solver = self.solver
        solver.grammar.require_nonterminal(start_nt)
        graph = solver.graph
        if semantics == "relational":
            if source is None and target is None:
                return solver.relations().node_pairs(start_nt)
            if source is None or target is None:
                raise SemanticsError(
                    "relational queries take either no endpoints (full "
                    "relation) or both (membership)"
                )
            if not (graph.has_node(source) and graph.has_node(target)):
                return False
            # One row of the by-source index — never the full relation.
            return graph.node_id(target) in solver.targets_from(
                start_nt, graph.node_id(source))
        if semantics in ("single-path", "length"):
            if not self.single_path:
                raise SemanticsError(
                    f"{semantics!r} queries need a service constructed "
                    "with single_path=True (length annotations are not "
                    "being maintained)"
                )
            if source is None or target is None:
                raise SemanticsError(
                    f"{semantics!r} queries require source and target"
                )
            if semantics == "length":
                if not (graph.has_node(source) and graph.has_node(target)):
                    return None
                return solver.length_of(start_nt, source, target)
            path = extract_path(self._single_path_index(), start_nt,
                                source, target)
            return tuple(
                (graph.node_at(i), label, graph.node_at(j))
                for i, label, j in path
            )
        raise SemanticsError(
            f"unknown service semantics {semantics!r}; expected one of "
            f"{SERVICE_SEMANTICS}"
        )

    def _single_path_index(self):
        if self._sp_index is None:
            self._sp_index = self.solver.single_path_index()
        return self._sp_index

    # ------------------------------------------------------------------
    # k-best paths
    # ------------------------------------------------------------------
    def _forest_index(self) -> AllPathIndex:
        """The witness forest over the current fixpoint, built lazily
        after a tick (like the single-path index) and shared by every
        cached k-best stream."""
        if self._forest is None:
            self._forest = AllPathIndex.build(
                self.solver.graph, self.solver.grammar,
                strategy=self.strategy, **self.strategy_options)
        return self._forest

    def _rank_adapter(self):
        if self.semiring == "viterbi":
            return ViterbiRank()
        return LengthRank()

    def _kbest_iterator(self, start_nt: Nonterminal, source, target,
                        max_length):
        forest = self._forest_index()
        graph = self.solver.graph
        for path in forest.iter_k_best(start_nt, source, target,
                                       max_length=max_length,
                                       rank=self._rank_adapter()):
            yield tuple(
                (graph.node_at(i), label, graph.node_at(j))
                for i, label, j in path
            )

    def top_k(self, start, source: Hashable, target: Hashable, k: int,
              max_length: int | None = None) -> list:
        """The *k* best paths from *source* to *target* under the
        service semiring — shortest first (``length``) or most probable
        first (``viterbi``).  A prefix of ``top_k(..., k + 1)``."""
        paths, _cursor, _exhausted = self.top_k_page(
            start, source, target, k, cursor=0, max_length=max_length)
        return paths

    def top_k_page(self, start, source: Hashable, target: Hashable, k: int,
                   cursor: int = 0,
                   max_length: int | None = None) -> tuple[list, int, bool]:
        """One page of the k-best stream: paths ``[cursor, cursor + k)``
        in rank order, the next cursor, and an exhaustion flag.

        The underlying enumeration is lazy and cached per
        ``(start, source, target, max_length)``: consecutive pages (and
        repeated queries) extend one best-first iterator instead of
        re-enumerating, and invalidation follows the same per-NT tick
        deltas as single-path entries."""
        if k < 0:
            raise ValueError("k must be non-negative")
        if cursor < 0:
            raise ValueError("cursor must be non-negative")
        start_nt = start if isinstance(start, Nonterminal) \
            else Nonterminal(str(start))
        with self._lock.reading():
            solver = self.solver
            solver.grammar.require_nonterminal(start_nt)
            graph = solver.graph
            with self._cache_lock:
                self._queries += 1
                self._topk_queries += 1
            if not (graph.has_node(source) and graph.has_node(target)):
                self._maybe_capture_stats()
                return [], cursor, True
            key = (str(start_nt), source, target, max_length)
            with self._kbest_lock:
                stream = self._kbest_cache.get(key)
                if stream is not None:
                    self._topk_stream_hits += 1
                    self._kbest_cache.move_to_end(key)
                else:
                    stream = _KBestStream(self._kbest_iterator(
                        start_nt, source, target, max_length))
                    self._kbest_cache[key] = stream
                    while len(self._kbest_cache) > self._cache_size:
                        self._kbest_cache.popitem(last=False)
                        self._evictions += 1
            page = stream.page(cursor, k)
            self._maybe_capture_stats()
            return page

    # ------------------------------------------------------------------
    # Update ticks
    # ------------------------------------------------------------------
    def update(self, inserts: Iterable[Edge] = (),
               deletes: Iterable[Edge] = ()) -> TickReport:
        """Convenience tick: all *inserts* then all *deletes*."""
        ops = [("insert", edge) for edge in inserts]
        ops += [("delete", edge) for edge in deletes]
        return self.tick(ops)

    def tick(self, ops: Iterable[tuple[str, Edge]]) -> TickReport:
        """Apply one coalesced update tick.

        *ops* is an interleaved stream of ``("insert"|"delete",
        (source, label, target))``.  Per edge only the **last**
        operation matters (intermediate states inside a tick are never
        observable), so the stream is deduplicated and applied as one
        DRed ``remove_edges`` pass followed by one ``add_edges``
        frontier run.  Queries block for the duration (writer lock) and
        afterwards see exactly the new fixpoint.
        """
        with self._lock.writing(), \
                get_tracer().span("service.tick") as tick_span, \
                stopwatch() as tick_timer:
            last_op: dict[tuple, str] = {}
            inserts_requested = deletes_requested = 0
            for op, edge in ops:
                if op not in ("insert", "delete"):
                    raise ValueError(
                        f"unknown update op {op!r}; expected 'insert' or "
                        "'delete'"
                    )
                if op == "insert":
                    inserts_requested += 1
                else:
                    deletes_requested += 1
                last_op[(edge[0], edge[1], edge[2])] = op
            deletes = [edge for edge, op in last_op.items()
                       if op == "delete"]
            inserts = [edge for edge, op in last_op.items()
                       if op == "insert"]
            coalesced_away = (inserts_requested + deletes_requested
                              - len(inserts) - len(deletes))

            solver = self.solver
            # Deleting an absent edge is a no-op; filtering here keeps a
            # retract-in-tick pattern from triggering a pointless DRed
            # pass (and the lazy support-index build that comes with it).
            deletes = [edge for edge in deletes
                       if solver.graph.has_edge(*edge)]
            changed: set[Nonterminal] = set()
            facts_added = facts_removed = 0
            dred_passes = frontier_runs = 0
            if deletes:
                facts_removed = solver.remove_edges(deletes)
                dred_passes = 1
                changed.update(solver.last_changes)
            if inserts:
                facts_added = solver.add_edges(inserts)
                frontier_runs = 1
                changed.update(solver.last_changes)
            self._sp_index = None
            self._forest = None
            # The padded batch matrices mirror the closed facts per
            # nonterminal; drop exactly the changed ones (a node-count
            # change is caught by the rebuild check at next build).
            with self._batch_lock:
                for nonterminal in changed:
                    self._batch_matrices.pop(nonterminal, None)
            # An inserted edge can add a *new alternative* at an
            # already-derived forest node — no fact or length delta, but
            # the node's path set (and hence k-best answers through it)
            # grows.  Widen the path-entry invalidation with the heads
            # of every inserted label.
            path_changed = set(changed)
            for _source, label, _target in inserts:
                path_changed.update(
                    solver.grammar.heads_for_terminal(Terminal(label)))
            # Cached witness paths reference concrete graph edges, so a
            # deletion can invalidate them even when DRed re-derived
            # every fact with identical annotations (same pair, same
            # length, different edges) — drop them all on any real
            # deletion instead of trusting the cell deltas alone.
            invalidated = self._invalidate(
                changed, drop_single_path=bool(deletes),
                path_changed=path_changed,
            )
            seconds = tick_timer.elapsed
            tick_span.set("ops", inserts_requested + deletes_requested)
            tick_span.set("coalesced_away", coalesced_away)
            tick_span.set("facts_added", facts_added)
            tick_span.set("facts_removed", facts_removed)

            self._ticks += 1
            self._ops_requested += inserts_requested + deletes_requested
            self._ops_coalesced_away += coalesced_away
            self._dred_passes += dred_passes
            self._frontier_runs += frontier_runs
            self._tick_seconds_last = seconds
            self._tick_seconds_total += seconds
            registry = get_registry()
            registry.counter(
                "repro_ticks_total", "Update ticks applied"
            ).inc()
            registry.counter(
                "repro_tick_ops_coalesced_total",
                "Update ops coalesced away before applying"
            ).inc(coalesced_away)
            registry.histogram(
                "repro_tick_seconds", "Update tick latency"
            ).observe(seconds)
            self._maybe_capture_stats()
            return TickReport(
                inserts_requested=inserts_requested,
                deletes_requested=deletes_requested,
                inserts_applied=len(inserts),
                deletes_applied=len(deletes),
                coalesced_away=coalesced_away,
                facts_added=facts_added,
                facts_removed=facts_removed,
                dred_passes=dred_passes,
                frontier_runs=frontier_runs,
                changed_nonterminals=tuple(sorted(
                    nonterminal.name for nonterminal in changed
                )),
                invalidated_entries=invalidated,
                seconds=seconds,
            )

    # ------------------------------------------------------------------
    # Cache invalidation
    # ------------------------------------------------------------------
    def _dependencies(self, start: Nonterminal) -> frozenset[Nonterminal]:
        """Non-terminals whose matrices a query starting at *start* can
        read: the rule-graph reachability closure (single-path
        extraction walks rule bodies recursively)."""
        cached = self._deps_cache.get(start)
        if cached is None:
            reachable = {start}
            frontier = [start]
            while frontier:
                for body_symbol in self._rule_bodies.get(frontier.pop(), ()):
                    if body_symbol not in reachable:
                        reachable.add(body_symbol)
                        frontier.append(body_symbol)
            cached = frozenset(reachable)
            self._deps_cache[start] = cached
        return cached

    def _invalidate(self, changed: set[Nonterminal],
                    drop_single_path: bool = False,
                    path_changed: set[Nonterminal] | None = None) -> int:
        """Drop exactly the cache entries whose answer could depend on
        the tick: relational/length entries read only their start
        matrix, single-path entries the reachable rule closure — plus,
        with *drop_single_path* (an edge was really deleted), every
        single-path entry, because witness paths reference edges the
        cell deltas cannot see.  k-best streams invalidate like
        single-path entries, against *path_changed* (the cell deltas
        widened by the heads of inserted labels)."""
        path_changed = changed if path_changed is None else path_changed
        dropped = 0
        if path_changed or drop_single_path:
            with self._kbest_lock:
                stale_kbest = [
                    key for key in self._kbest_cache
                    if drop_single_path or any(
                        nonterminal in path_changed
                        for nonterminal in
                        self._dependencies(Nonterminal(key[0])))
                ]
                for key in stale_kbest:
                    del self._kbest_cache[key]
                dropped += len(stale_kbest)
        if not changed and not drop_single_path:
            with self._cache_lock:
                self._invalidations += dropped
            return dropped
        with self._cache_lock:
            stale = []
            for key in self._cache:
                start_name, _source, _target, semantics = key
                start_nt = Nonterminal(start_name)
                if semantics == "single-path":
                    if drop_single_path:
                        stale.append(key)
                        continue
                    depends: "frozenset[Nonterminal] | tuple" = \
                        self._dependencies(start_nt)
                else:
                    depends = (start_nt,)
                if any(nonterminal in changed for nonterminal in depends):
                    stale.append(key)
            for key in stale:
                del self._cache[key]
            self._invalidations += len(stale) + dropped
            return len(stale) + dropped

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def capture_stats(self):
        """Capture a stats snapshot **inside** the next operation's
        critical section on this thread.

        The JSONL server's ``--stats`` mode attaches a stats object to
        every response.  Reading :attr:`stats` *after* the operation
        returns races with other connections' ticks — the reported tick
        count could disagree with the response it rides on.  Under this
        context manager, ``query``/``tick``/``save_snapshot`` (and the
        :attr:`stats` read itself) record their stats while still
        holding the service lock; the yielded callable returns that
        consistent snapshot (or None when no operation ran)::

            with service.capture_stats() as captured:
                report = service.tick(ops)
            stats = captured()   # consistent with exactly this tick
        """
        state = self._capture
        previous = getattr(state, "active", False)
        state.active = True
        state.captured = None
        try:
            yield lambda: getattr(state, "captured", None)
        finally:
            state.active = previous

    def _maybe_capture_stats(self) -> None:
        """Called by operations while their lock is held: snapshot the
        stats for an enclosing :meth:`capture_stats` block."""
        state = self._capture
        if getattr(state, "active", False):
            state.captured = self._stats_dict()

    @property
    def stats(self) -> dict:
        """Service instrumentation: cache behavior, tick latency,
        startup mode, snapshot size and the wrapped solver's counters."""
        payload = self._stats_dict()
        state = self._capture
        if getattr(state, "active", False):
            # A stats *read* is its own operation: the captured snapshot
            # is the very dict returned, trivially consistent with it.
            state.captured = payload
        return payload

    def _stats_dict(self) -> dict:
        with self._cache_lock:
            hits, misses = self._hits, self._misses
            entries = len(self._cache)
            evictions = self._evictions
            invalidations = self._invalidations
        answered = hits + misses
        with self._kbest_lock:
            kbest_entries = len(self._kbest_cache)
        return {
            "backend": self.backend,
            "strategy": self.strategy,
            "single_path": self.single_path,
            "semiring": self.semiring,
            "top_k": {
                "queries": self._topk_queries,
                "stream_hits": self._topk_stream_hits,
                "cached_streams": kbest_entries,
            },
            "graph": {
                "nodes": self.solver.graph.node_count,
                "edges": self.solver.graph.edge_count,
            },
            "queries": self._queries,
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": round(hits / answered, 4) if answered else 0.0,
            "cache_entries": entries,
            "cache_capacity": self._cache_size,
            "cache_evictions": evictions,
            "cache_invalidations": invalidations,
            "ticks": self._ticks,
            "tick_ops_requested": self._ops_requested,
            "tick_ops_coalesced_away": self._ops_coalesced_away,
            "dred_passes": self._dred_passes,
            "frontier_runs": self._frontier_runs,
            "tick_last_seconds": round(self._tick_seconds_last, 6),
            "tick_total_seconds": round(self._tick_seconds_total, 6),
            "startup": {
                "warm_start": self._warm_started,
                "closure_iterations":
                    self.solver.initial_closure_iterations,
                "seconds": round(self._startup_seconds, 6),
            },
            "snapshot_bytes": self._snapshot_bytes,
            "batch": {
                "queries": self._batched_queries,
                "closures": self._batch_closures,
                "cached_nonterminals": len(self._batch_matrices),
            },
            "solver": dict(self.solver.stats),
        }
