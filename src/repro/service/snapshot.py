"""Versioned on-disk snapshots of solved CFPQ indices.

Every process that loads a graph re-pays the closure before it can
answer a single query.  A snapshot persists the *solved* state — the
graph node map, the CNF grammar (with its nullable diagonal), the
per-non-terminal boolean matrices, the length/witness annotations and,
when available, the incremental solver's fact/support sets — so a
server restart costs O(load) instead of O(solve).

Format
------
A snapshot file is a one-line magic header carrying the format version,
followed by a pickled envelope of **plain containers only** (dicts,
lists, tuples, ints, strings, bytes — never library objects), so old
snapshots survive internal refactors as long as the format version is
understood::

    repro-cfpq-snapshot\\x00<version>\\n
    <pickle of {"library_version": "...", "payload": {...}}>

:func:`read_snapshot` checks the magic and version *before* touching
the pickle (foreign files raise :class:`~repro.errors.SnapshotError`,
unknown versions :class:`~repro.errors.SnapshotVersionError`), and then
unpickles through a restricted loader whose ``find_class`` rejects
every class — plain containers never need one, and a crafted pickle
cannot reach a callable to execute.  The plain-container rule is also
why graph *nodes* must be plain values (ints, strings, tuples...) for a
graph to be snapshottable.

Matrices travel through the same **payload codec** the process tile
scheduler uses (:meth:`repro.matrices.base.MatrixBackend.tile_payload` /
``tile_from_payload``): dense bool buffers, bitset words, CSR index
arrays, or coordinate lists, tagged with the producing backend's
registry key.  Loading under a *different* backend re-materializes
through the codec and converts via the coordinate round-trip
(:meth:`~repro.matrices.base.MatrixBackend.clone`), so a snapshot saved
with ``sparse`` warm-starts a ``bitset`` engine and vice versa.
Annotated (length/witness/counting/viterbi) matrices travel as
:meth:`repro.core.semiring.AnnotatedBackend.tile_payload` cells with
symbols flattened to names.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Hashable

from ..errors import SnapshotError, SnapshotVersionError, UnknownBackendError
from ..grammar.cfg import CFG
from ..grammar.production import Production
from ..grammar.symbols import Nonterminal, Symbol, Terminal
from ..graph.labeled_graph import LabeledGraph
from ..matrices.base import BooleanMatrix, default_backend, get_backend
from ..core.semiring import (
    LENGTH_SEMIRING,
    WITNESS_SEMIRING,
    AnnotatedBackend,
    AnnotatedMatrix,
    annotated_tile_from_payload,
    get_semiring,
)

MAGIC = "repro-cfpq-snapshot"
_HEADER_PREFIX = MAGIC.encode("ascii") + b"\x00"

#: Current snapshot format version.  Bump on any payload layout change;
#: readers refuse versions they do not list in SUPPORTED_VERSIONS.
SNAPSHOT_VERSION = 1
SUPPORTED_VERSIONS: tuple[int, ...] = (1,)


# ----------------------------------------------------------------------
# Envelope I/O
# ----------------------------------------------------------------------

class _PlainUnpickler(pickle.Unpickler):
    """Unpickler for the plain-container envelope: every class lookup
    is refused, so a crafted pickle has no callable to execute."""

    def find_class(self, module: str, name: str):
        raise SnapshotError(
            f"snapshot payload references {module}.{name}; snapshots "
            "hold only plain containers"
        )


class _CanonicalPickler(pickle.Pickler):
    """Memo-free pickler: equal payloads yield equal bytes.

    Ordinary pickling memoizes by object *identity*, so two logically
    equal payloads serialize differently whenever their internal object
    sharing differs (a live service interns strings the unpickled twin
    of its own snapshot does not).  Replication's byte-identical
    convergence guarantee needs ``bytes == f(value)``, so the memo is
    disabled (``fast``); the envelope holds only acyclic plain
    containers, hence no recursion risk."""

    def __init__(self, stream):
        super().__init__(stream, protocol=4)
        self.fast = True


def write_snapshot(path: str, payload: dict) -> int:
    """Write *payload* under the versioned envelope; returns the file
    size in bytes."""
    document = {
        "library_version": _library_version(),
        "payload": payload,
    }
    with open(path, "wb") as stream:
        stream.write(_HEADER_PREFIX
                     + str(SNAPSHOT_VERSION).encode("ascii") + b"\n")
        _CanonicalPickler(stream).dump(document)
    return os.path.getsize(path)


def read_snapshot(path: str) -> dict:
    """Read and validate a snapshot; returns the payload.

    The magic header and format version are checked before any byte of
    the body is unpickled, and the body goes through the restricted
    :class:`_PlainUnpickler`."""
    try:
        stream = open(path, "rb")
    except OSError as error:
        raise SnapshotError(f"cannot open snapshot {path!r}: {error}") from error
    with stream:
        header = stream.readline(256)
        if not header.startswith(_HEADER_PREFIX) \
                or not header.endswith(b"\n"):
            raise SnapshotError(f"{path!r} is not a repro-cfpq snapshot")
        version_bytes = header[len(_HEADER_PREFIX):].strip()
        try:
            version = int(version_bytes)
        except ValueError:
            raise SnapshotError(
                f"{path!r}: malformed snapshot version {version_bytes!r}"
            ) from None
        if version not in SUPPORTED_VERSIONS:
            raise SnapshotVersionError(version, SUPPORTED_VERSIONS)
        try:
            document = _PlainUnpickler(stream).load()
        except SnapshotError:
            raise
        except Exception as error:  # truncated / corrupted body
            raise SnapshotError(
                f"{path!r} is not a readable repro-cfpq snapshot: {error}"
            ) from error
    payload = document.get("payload") if isinstance(document, dict) else None
    if not isinstance(payload, dict):
        raise SnapshotError(f"{path!r}: snapshot payload is malformed")
    return payload


def _library_version() -> str:
    from .. import __version__

    return __version__


# ----------------------------------------------------------------------
# Graph / grammar codecs
# ----------------------------------------------------------------------

def encode_graph(graph: LabeledGraph) -> dict:
    """Node map (enumeration order) + edges by dense id."""
    return {
        "nodes": list(graph.nodes),
        "edges": [list(edge) for edge in graph.edges_by_id()],
    }


def decode_graph(doc: dict) -> LabeledGraph:
    graph = LabeledGraph()
    nodes: list[Hashable] = list(doc["nodes"])
    for node in nodes:
        graph.add_node(node)
    for i, label, j in doc["edges"]:
        graph.add_edge(nodes[i], label, nodes[j])
    return graph


def encode_grammar(grammar: CFG) -> dict:
    def sym(symbol: Symbol) -> list:
        if isinstance(symbol, Nonterminal):
            return ["nt", symbol.name]
        return ["t", symbol.label]

    return {
        "productions": [
            [production.head.name, [sym(s) for s in production.body]]
            for production in grammar.productions
        ],
        "nonterminals": sorted(nt.name for nt in grammar.nonterminals),
        "terminals": sorted(t.label for t in grammar.terminals),
        "nullable_diagonal": sorted(
            nt.name for nt in grammar.nullable_diagonal
        ),
    }


def decode_grammar(doc: dict) -> CFG:
    productions = [
        Production(
            Nonterminal(head),
            tuple(
                Nonterminal(value) if kind == "nt" else Terminal(value)
                for kind, value in body
            ),
        )
        for head, body in doc["productions"]
    ]
    return CFG(
        productions,
        extra_nonterminals=[Nonterminal(n) for n in doc.get("nonterminals", ())],
        extra_terminals=[Terminal(t) for t in doc.get("terminals", ())],
        nullable_diagonal=[
            Nonterminal(n) for n in doc.get("nullable_diagonal", ())
        ],
    )


# ----------------------------------------------------------------------
# Boolean matrices (backend payload codec)
# ----------------------------------------------------------------------

def encode_boolean_matrices(matrices, backend) -> dict:
    """Encode a ``nonterminal -> matrix`` mapping to payload lists.

    A :class:`repro.core.tilestore.SpillableMatrixMap` is encoded
    straight against its tile store: spilled matrices stream their
    encoded form from the spill files and resident ones use the store's
    version-keyed payload cache — the save path never re-materializes a
    cold matrix (no double-buffering).

    Keys are emitted in sorted-name order so the encoding is canonical:
    non-terminal sets iterate in hash order, which `PYTHONHASHSEED`
    randomizes *per process*, and replicated serving asserts leader and
    follower snapshots byte-identical across processes.
    """
    from ..core.tilestore import SpillableMatrixMap

    if isinstance(matrices, SpillableMatrixMap):
        return {
            nonterminal.name: list(matrices.payload(nonterminal))
            for nonterminal in sorted(matrices, key=lambda nt: nt.name)
        }
    backend = get_backend(backend)
    return {
        nonterminal.name: list(backend.tile_payload(matrix))
        for nonterminal, matrix in sorted(matrices.items(),
                                          key=lambda item: item[0].name)
    }


def iter_decoded_matrices(doc: dict, backend: "str | None" = None):
    """Stream ``(nonterminal, matrix)`` pairs decoded one at a time.

    Payloads are decoded by the backend that produced them (its registry
    key is the first payload element); when *backend* names a different
    one the matrix is converted via the coordinate round-trip — the
    cross-backend load path.  Consumers that extract per-matrix state
    (pair sets, a tile store) and drop the matrix keep at most one
    decoded matrix live beyond their own accounting.
    """
    target = get_backend(backend) if backend is not None else None
    for name, payload in doc.items():
        source_name = payload[0]
        try:
            source = get_backend(source_name)
        except UnknownBackendError as error:
            raise SnapshotError(
                f"snapshot matrices were saved with backend "
                f"{source_name!r}, which is not available here "
                f"({error}); re-save the snapshot with an installed "
                "backend"
            ) from error
        matrix = source.tile_from_payload(tuple(payload))
        if target is not None and target.name != source.name:
            matrix = target.clone(matrix)
        yield Nonterminal(name), matrix


def decode_boolean_matrices(doc: dict, backend: "str | None" = None,
                            ) -> dict[Nonterminal, BooleanMatrix]:
    """Re-materialize all matrices eagerly (see
    :func:`iter_decoded_matrices` for the streaming form)."""
    return dict(iter_decoded_matrices(doc, backend))


# ----------------------------------------------------------------------
# Annotated matrices (length / witness payloads)
# ----------------------------------------------------------------------

def _encode_entry(entry: tuple) -> list:
    """Flatten one witness/support entry to plain data.  The shapes are
    shared between the witness semiring and the DRed support index:
    ``("edge", label)``, ``("empty",)``, ``("split", B, C, r)``."""
    tag = entry[0]
    if tag == "split":
        return ["split", entry[1].name, entry[2].name, entry[3]]
    if tag == "edge":
        return ["edge", entry[1]]
    if tag == "empty":
        return ["empty"]
    raise SnapshotError(f"cannot encode annotation entry {entry!r}")


def _entry_sort_key(entry: list) -> str:
    """Canonical order for encoded annotation entries (they are
    heterogeneous lists, so compare their JSON text)."""
    return json.dumps(entry)


def _decode_entry(entry: list) -> tuple:
    tag = entry[0]
    if tag == "split":
        return ("split", Nonterminal(entry[1]), Nonterminal(entry[2]),
                entry[3])
    if tag == "edge":
        return ("edge", entry[1])
    if tag == "empty":
        return ("empty",)
    raise SnapshotError(f"cannot decode annotation entry {entry!r}")


def _is_counting_name(semiring_name: str) -> bool:
    """Counting-family semirings (including the cap-1 ``support-count``
    instance and capped ``counting[N]`` variants) all carry frozensets
    of ``(entry, count)`` pairs."""
    return (semiring_name in ("counting", "support-count")
            or semiring_name.startswith("counting["))


def _set_valued(semiring_name: str) -> bool:
    return semiring_name == "witness" or _is_counting_name(semiring_name)


def _encode_value(semiring_name: str, value):
    """Set-valued annotations (witness entry sets, counting entry-count
    sets) are emitted in canonical entry order — frozenset iteration
    follows per-process hash randomization, and replicated serving
    asserts snapshots byte-identical across processes.  Scalar
    annotations (length, viterbi) pass through."""
    if semiring_name == "witness":
        return sorted((_encode_entry(entry) for entry in value),
                      key=_entry_sort_key)
    if _is_counting_name(semiring_name):
        return sorted(
            ([_encode_entry(entry), count] for entry, count in value),
            key=_entry_sort_key,
        )
    return value


def _decode_value(semiring_name: str, value):
    if semiring_name == "witness":
        return frozenset(_decode_entry(entry) for entry in value)
    if _is_counting_name(semiring_name):
        return frozenset(
            (_decode_entry(entry), count) for entry, count in value
        )
    return value


def encode_annotated_matrices(matrices: dict[Nonterminal, AnnotatedMatrix],
                              semiring) -> dict:
    backend = AnnotatedBackend(semiring)
    out: dict = {}
    for nonterminal, matrix in sorted(matrices.items(),
                                      key=lambda item: item[0].name):
        (_kind, name, shape, _symbol, _ro, _co,
         cells) = backend.tile_payload(matrix)
        encoded = [[i, j, _encode_value(name, value)]
                   for (i, j), value in cells]
        if _set_valued(name):
            # Set-valued cells iterate in hash order: sort the cell
            # list too so the encoding is process-independent; decode
            # rebuilds frozensets.
            encoded.sort(key=lambda cell: (cell[0], cell[1]))
        out[nonterminal.name] = {
            "semiring": name,
            "shape": list(shape),
            "cells": encoded,
        }
    return out


def decode_annotated_matrices(doc: dict) -> dict[Nonterminal, AnnotatedMatrix]:
    out: dict[Nonterminal, AnnotatedMatrix] = {}
    for name, entry in doc.items():
        semiring_name = entry["semiring"]
        try:
            get_semiring(semiring_name)
        except KeyError as error:
            raise SnapshotError(str(error)) from error
        payload = (
            "annotated", semiring_name, tuple(entry["shape"]),
            Nonterminal(name), 0, 0,
            tuple(
                ((i, j), _decode_value(semiring_name, value))
                for i, j, value in entry["cells"]
            ),
        )
        out[Nonterminal(name)] = annotated_tile_from_payload(payload)
    return out


# ----------------------------------------------------------------------
# Incremental solver state (facts / supports / lengths)
# ----------------------------------------------------------------------

def encode_incremental_state(state: dict) -> dict:
    """Encode solver state canonically: every dict/set iteration below
    is sorted, because fact-dict insertion order and entry-set order
    follow per-process hash randomization while replicated serving
    asserts leader/follower snapshot bytes identical."""
    doc: dict = {
        "facts": {
            nonterminal.name: sorted(pairs)
            for nonterminal, pairs in sorted(state["facts"].items(),
                                             key=lambda item: item[0].name)
        },
    }
    if "lengths" in state:
        doc["lengths"] = sorted(
            ([nonterminal.name, i, j, length]
             for (nonterminal, i, j), length in state["lengths"].items()),
        )
    if "supports" in state:
        doc["supports"] = sorted(
            ([[nonterminal.name, i, j],
              sorted((_encode_entry(entry) for entry in entries),
                     key=_entry_sort_key)]
             for (nonterminal, i, j), entries in state["supports"].items()),
            key=lambda item: item[0],
        )
    return doc


def decode_incremental_state(doc: dict) -> dict:
    state: dict = {
        "facts": {
            Nonterminal(name): {tuple(pair) for pair in pairs}
            for name, pairs in doc["facts"].items()
        },
    }
    if "lengths" in doc:
        state["lengths"] = {
            (Nonterminal(name), i, j): length
            for name, i, j, length in doc["lengths"]
        }
    if "supports" in doc:
        state["supports"] = {
            (Nonterminal(name), i, j):
                {_decode_entry(entry) for entry in entries}
            for (name, i, j), entries in doc["supports"]
        }
    return state


# ----------------------------------------------------------------------
# Engine-level save / load
# ----------------------------------------------------------------------

def build_engine_payload(engine, semantics: tuple[str, ...] = (
        "relational", "single-path", "all-path")) -> dict:
    """Snapshot *engine* (solving any missing *semantics* first)."""
    payload: dict = {
        "graph": encode_graph(engine.graph),
        "grammar": encode_grammar(engine.grammar),
        "backend": engine.backend,
        "strategy": engine.strategy,
    }
    if "relational" in semantics:
        result = engine.solve()
        payload["relational"] = {
            "matrices": encode_boolean_matrices(
                result.matrices, result.stats.backend
            ),
            "stats": {
                "iterations": result.stats.iterations,
                "multiplications": result.stats.multiplications,
            },
        }
    if "single-path" in semantics:
        index = engine.single_path_index()
        n = engine.graph.node_count
        per_nonterminal: dict[Nonterminal, dict] = {}
        for (i, j), entries in index.cells.items():
            for nonterminal, length in entries.items():
                per_nonterminal.setdefault(nonterminal, {})[(i, j)] = length
        payload["length"] = encode_annotated_matrices(
            {
                nonterminal: AnnotatedMatrix(
                    LENGTH_SEMIRING, (n, n), cells, symbol=nonterminal
                )
                for nonterminal, cells in per_nonterminal.items()
            },
            LENGTH_SEMIRING,
        )
        # extract_path picks the first midpoint in cell order, so the
        # merged cell-key order must survive the round trip exactly.
        payload["length_cell_order"] = [list(pair) for pair in index.cells]
    if "all-path" in semantics:
        forest = engine.all_path_enumerator().index
        n = engine.graph.node_count
        witness_matrices: dict[Nonterminal, AnnotatedMatrix] = {}
        for nonterminal in engine.grammar.nonterminals:
            cells = {
                (i, j): frozenset(
                    ("split",) + tuple(split)
                    for split in forest.splits(nonterminal, i, j)
                )
                for i, j in forest.relations.pairs(nonterminal)
            }
            witness_matrices[nonterminal] = AnnotatedMatrix(
                WITNESS_SEMIRING, (n, n), cells, symbol=nonterminal
            )
        payload["witness"] = encode_annotated_matrices(
            witness_matrices, WITNESS_SEMIRING
        )
    return payload


def save_engine_snapshot(path: str, engine, semantics: tuple[str, ...] = (
        "relational", "single-path", "all-path")) -> int:
    """Write an engine snapshot; returns the file size in bytes."""
    return write_snapshot(path, build_engine_payload(engine, semantics))


def restore_single_path_index(payload: dict, graph: LabeledGraph,
                              grammar: CFG):
    """Rebuild the Section-5 index from a snapshot's length payloads."""
    from ..core.single_path import SinglePathIndex

    matrices = decode_annotated_matrices(payload["length"])
    cells: dict[tuple[int, int], dict] = {
        tuple(pair): {} for pair in payload.get("length_cell_order", ())
    }
    for nonterminal, matrix in matrices.items():
        for i, j, length in matrix.nonzero_cells():
            cells.setdefault((i, j), {})[nonterminal] = length
    return SinglePathIndex(graph=graph, grammar=grammar, cells=cells,
                           iterations=0)


def load_engine_snapshot(path: str, backend: "str | None" = None,
                         strategy: "str | None" = None,
                         memory_budget=None, spill_dir: "str | None" = None):
    """Load a warm :class:`~repro.core.engine.CFPQEngine` from *path*.

    Every semantics section the snapshot carries is installed into the
    engine's caches, so the corresponding queries run with **zero**
    closure rounds; missing sections simply solve lazily as usual.
    *backend* re-materializes the relational matrices on a different
    backend than the snapshot was saved with.

    With a *memory_budget* (or ``$REPRO_MEMORY_BUDGET``) the relational
    matrices load **directly into a tile store**: each matrix is
    decoded once, its pair set extracted, and the matrix handed to a
    budgeted :class:`~repro.core.tilestore.TileStore` behind a
    :class:`~repro.core.tilestore.SpillableMatrixMap` — cold matrices
    spill instead of all being resident, and the budget also rides the
    engine's strategy options so later closures honour it.
    """
    from ..core.engine import CFPQEngine
    from ..core.allpath import AllPathEnumerator
    from ..core.matrix_cfpq import MatrixCFPQResult, MatrixCFPQStats
    from ..core.path_index import AllPathIndex
    from ..core.relations import ContextFreeRelations
    from ..core.tilestore import (
        SpillableMatrixMap,
        TileStore,
        resolve_memory_budget,
        resolve_spill_dir,
    )

    payload = read_snapshot(path)
    graph = decode_graph(payload["graph"])
    grammar = decode_grammar(payload["grammar"])
    backend = backend or payload.get("backend") or default_backend()
    strategy = strategy or payload.get("strategy") or "delta"
    budget = resolve_memory_budget(memory_budget)
    spill_dir = resolve_spill_dir(spill_dir)
    engine_options: dict = {}
    if budget is not None:
        engine_options["memory_budget"] = budget
        if spill_dir is not None:
            engine_options["spill_dir"] = spill_dir
    engine = CFPQEngine(graph, grammar, backend=backend, strategy=strategy,
                        **engine_options)

    if "relational" in payload:
        decoded = iter_decoded_matrices(
            payload["relational"]["matrices"], backend=backend
        )
        pair_sets: dict = {}
        nnz: dict = {}
        if budget is not None:
            store = TileStore(budget_bytes=budget, spill_dir=spill_dir)
            symbols = []
            for nonterminal, matrix in decoded:
                symbols.append(nonterminal)
                pair_sets[nonterminal] = matrix.to_pair_set()
                nnz[nonterminal.name] = matrix.nnz()
                store.put(SpillableMatrixMap.key_for(nonterminal), matrix)
            matrices = SpillableMatrixMap(store, symbols)
        else:
            matrices = {}
            for nonterminal, matrix in decoded:
                pair_sets[nonterminal] = matrix.to_pair_set()
                nnz[nonterminal.name] = matrix.nnz()
                matrices[nonterminal] = matrix
        relations = ContextFreeRelations(graph, pair_sets)
        stats = MatrixCFPQStats(
            iterations=0,
            multiplications=0,
            node_count=graph.node_count,
            nonterminal_count=len(grammar.nonterminals),
            backend=get_backend(backend).name,
            nnz_per_nonterminal=nnz,
            strategy=strategy,
            details={"snapshot": {
                "warm_start": True,
                "solved_stats": dict(payload["relational"].get("stats", {})),
            }},
        )
        engine.adopt_solution(MatrixCFPQResult(
            matrices=matrices, relations=relations, stats=stats
        ))
    if "length" in payload:
        engine.adopt_single_path_index(
            restore_single_path_index(payload, graph, engine.grammar)
        )
    if "witness" in payload:
        forest = AllPathIndex.from_witness_matrices(
            graph, engine.grammar,
            decode_annotated_matrices(payload["witness"]),
        )
        engine.adopt_all_path_enumerator(AllPathEnumerator(
            graph, engine.grammar, normalize=False, index=forest
        ))
    return engine
