"""JSONL front-end for :class:`~repro.service.query_service.QueryService`.

One request per line, one JSON response per line — the same protocol
over stdio (scriptable: pipe a session into ``repro-cfpq serve``) and
TCP (``repro-cfpq serve --port N``; try it with netcat).  Requests:

.. code-block:: json

    {"op": "query", "start": "S"}
    {"op": "query", "start": "S", "source": 0, "target": 3}
    {"op": "query", "start": "S", "source": 0, "target": 3,
     "semantics": "single-path"}
    {"op": "update", "insert": [["u", "a", "v"]],
     "delete": [["x", "a", "y"]]}
    {"op": "update", "ops": [["insert", "u", "a", "v"],
                             ["delete", "u", "a", "v"]]}
    {"op": "stats"}
    {"op": "save", "path": "index.snapshot"}
    {"op": "ping"}
    {"op": "shutdown"}

Responses are ``{"ok": true, "result": ...}`` or ``{"ok": false,
"error": "...", "error_type": "..."}``; with ``--stats`` every response
additionally carries a compact ``stats`` object (cache hit rate, tick
latency, snapshot size).

The TCP server is a thread-per-connection loop over one shared service;
the service's reader/writer lock makes concurrent queries safe and
gives every query a consistent post-tick snapshot.  An ``update`` from
any connection invalidates exactly the affected cache entries for all
of them.
"""

from __future__ import annotations

import json
import socketserver
import sys
from typing import IO

from ..errors import ReproError
from .query_service import QueryService, TickReport


# ----------------------------------------------------------------------
# Request handling (transport-independent)
# ----------------------------------------------------------------------

def handle_request(service: QueryService, request: dict,
                   include_stats: bool = False) -> dict:
    """Execute one request object against *service*.

    Never raises for request-level problems — malformed input and
    :class:`~repro.errors.ReproError` subclasses become ``ok: false``
    responses, so one bad line cannot kill a session."""
    try:
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        op = request.get("op", "query")
        result = _dispatch(service, op, request)
        response: dict = {"ok": True, "op": op, "result": result}
    except (ReproError, ValueError, KeyError, TypeError) as error:
        response = {"ok": False, "error": str(error),
                    "error_type": type(error).__name__}
    if include_stats:
        response["stats"] = _compact_stats(service)
    return response


def _dispatch(service: QueryService, op: str, request: dict):
    if op == "query":
        start = request.get("start")
        if start is None:
            raise ValueError("query requires 'start'")
        graph = service.graph
        result = service.query(
            start,
            source=_coerce_node(graph, request.get("source")),
            target=_coerce_node(graph, request.get("target")),
            semantics=request.get("semantics", "relational"),
        )
        return _jsonable_result(result)
    if op == "update":
        graph = service.graph
        ops = [
            (str(kind), _coerce_edge(graph, (source, label, target)))
            for kind, source, label, target in request.get("ops", ())
        ]
        ops += [("insert", _coerce_edge(graph, edge))
                for edge in request.get("insert", ())]
        ops += [("delete", _coerce_edge(graph, edge))
                for edge in request.get("delete", ())]
        if not ops:
            raise ValueError(
                "update requires 'ops', 'insert' and/or 'delete'"
            )
        return service.tick(ops).as_dict()
    if op == "stats":
        return service.stats
    if op == "save":
        path = request.get("path")
        if not path:
            raise ValueError("save requires 'path'")
        return {"path": path, "bytes": service.save_snapshot(path)}
    if op == "ping":
        return "pong"
    if op == "shutdown":
        return "bye"
    raise ValueError(
        f"unknown op {op!r}; expected query/update/stats/save/ping/shutdown"
    )


def _coerce_node(graph, token):
    """Interpret a JSON node token against the graph's node objects:
    JSON cannot distinguish the node ``"0"`` from the node ``0``, so try
    the literal value first and the int/str twin second."""
    if token is None or graph.has_node(token):
        return token
    if isinstance(token, str):
        try:
            twin: object = int(token)
        except ValueError:
            return token
    elif isinstance(token, int):
        twin = str(token)
    else:
        return token
    return twin if graph.has_node(twin) else token


def _coerce_edge(graph, edge) -> tuple:
    """Apply the same node coercion to an update edge that queries get,
    so a client sending ``"2"`` for the integer node ``2`` attaches the
    edge to the existing node instead of silently creating a twin."""
    source, label, target = edge
    return (_coerce_node(graph, source), str(label),
            _coerce_node(graph, target))


def _json_node(node):
    return node if isinstance(node, (int, str, float, bool)) else str(node)


def _jsonable_result(result):
    if isinstance(result, frozenset):
        return sorted(
            ([_json_node(a), _json_node(b)] for a, b in result),
            key=lambda pair: (str(pair[0]), str(pair[1])),
        )
    if isinstance(result, tuple):  # a witness path
        return [[_json_node(i), label, _json_node(j)]
                for i, label, j in result]
    if isinstance(result, TickReport):
        return result.as_dict()
    return result


def _compact_stats(service: QueryService) -> dict:
    stats = service.stats
    return {
        "cache_hit_rate": stats["cache_hit_rate"],
        "cache_entries": stats["cache_entries"],
        "cache_invalidations": stats["cache_invalidations"],
        "ticks": stats["ticks"],
        "dred_passes": stats["dred_passes"],
        "frontier_runs": stats["frontier_runs"],
        "tick_last_seconds": stats["tick_last_seconds"],
        "snapshot_bytes": stats["snapshot_bytes"],
        "startup": stats["startup"],
    }


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------

def _handle_line(service: QueryService, line: str,
                 include_stats: bool) -> "dict | None":
    """One JSONL protocol step, shared by the stdio and TCP transports:
    blank lines are skipped (None), bad JSON becomes an error response,
    everything else goes through :func:`handle_request`."""
    line = line.strip()
    if not line:
        return None
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        return {"ok": False, "error": f"bad JSON: {error}",
                "error_type": "JSONDecodeError"}
    return handle_request(service, request, include_stats)


def _is_shutdown(response: dict) -> bool:
    return bool(response.get("ok")) and response.get("op") == "shutdown"


def serve_stream(service: QueryService, in_stream: IO[str],
                 out_stream: IO[str], include_stats: bool = False) -> int:
    """The stdio loop: read JSONL requests until EOF or a ``shutdown``
    op; returns the number of requests served."""
    served = 0
    for raw in in_stream:
        response = _handle_line(service, raw, include_stats)
        if response is None:
            continue
        out_stream.write(json.dumps(response) + "\n")
        out_stream.flush()
        served += 1
        if _is_shutdown(response):
            break
    return served


class JSONLServer(socketserver.ThreadingTCPServer):
    """Thread-per-connection TCP transport over one shared service."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: QueryService,
                 include_stats: bool = False):
        self.service = service
        self.include_stats = include_stats
        super().__init__(address, _JSONLConnection)


class _JSONLConnection(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: JSONLServer = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            response = _handle_line(
                server.service, raw.decode("utf-8", errors="replace"),
                server.include_stats,
            )
            if response is None:
                continue
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            if _is_shutdown(response):
                break


def serve_tcp(service: QueryService, host: str = "127.0.0.1",
              port: int = 0, include_stats: bool = False,
              ready_stream: "IO[str] | None" = None) -> JSONLServer:
    """Start (and block on) the TCP transport.  ``port=0`` binds an
    ephemeral port; the actual address is announced on *ready_stream*
    (default stderr) as ``listening on HOST:PORT`` before serving."""
    server = JSONLServer((host, port), service, include_stats)
    bound_host, bound_port = server.server_address[:2]
    stream = ready_stream if ready_stream is not None else sys.stderr
    stream.write(f"listening on {bound_host}:{bound_port}\n")
    stream.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.server_close()
    return server
