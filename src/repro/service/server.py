"""JSONL front-end for :class:`~repro.service.query_service.QueryService`.

One request per line, one JSON response per line — the same protocol
over stdio (scriptable: pipe a session into ``repro-cfpq serve``) and
TCP (``repro-cfpq serve --port N``; try it with netcat).  Requests:

.. code-block:: json

    {"op": "query", "start": "S"}
    {"op": "query", "start": "S", "source": 0, "target": 3}
    {"op": "query", "start": "S", "source": 0, "target": 3,
     "semantics": "single-path"}
    {"op": "batch", "queries": [{"start": "S", "source": 0, "target": 3},
                                {"start": "S"}]}
    {"op": "top_k", "start": "S", "source": 0, "target": 3, "k": 5}
    {"op": "top_k", "start": "S", "source": 0, "target": 3, "k": 5,
     "cursor": 5, "max_length": 32}
    {"op": "update", "insert": [["u", "a", "v"]],
     "delete": [["x", "a", "y"]]}
    {"op": "update", "ops": [["insert", "u", "a", "v"],
                             ["delete", "u", "a", "v"]]}
    {"op": "stats"}
    {"op": "sync"}
    {"op": "save", "path": "index.snapshot"}
    {"op": "metrics"}
    {"op": "ping"}
    {"op": "shutdown"}

Responses are ``{"ok": true, "result": ...}`` or ``{"ok": false,
"error": "...", "error_type": "..."}``; with ``--stats`` every response
additionally carries a compact ``stats`` object (cache hit rate, tick
latency, snapshot size, replication horizon) snapshotted **inside the
operation's critical section**, so it is always consistent with the
response it rides on.

The TCP transport is an asyncio server (:class:`AsyncJSONLServer`): one
lightweight task per connection instead of one thread, so thousands of
mostly-idle connections cost file descriptors, not stacks.  Requests
execute on a thread pool under the service's reader/writer lock — any
number of queries in parallel, ticks exclusive — exactly as in the
stdio loop.  A ``shutdown`` op stops the *whole* server (every
connection observes the close, a leader's WAL is flushed), client
disconnects mid-response are absorbed per-connection, and oversized
frames are refused with an error response instead of an unbounded read
buffer.

A ``batch`` op answers many queries in one round-trip: ``queries`` in,
an ordered list of per-item ``{"ok": ...}`` envelopes out — one bad
item reports its own error instead of failing the batch.  Relational
membership probes in a batch are answered by **one** masked closure
(:meth:`QueryService.query_batch`), not one solve per item.  With
``--batch-window-ms W`` the server additionally *micro-batches*:
concurrent single ``query`` requests arriving within a W ms window are
coalesced into one ``query_batch`` call, each connection still
receiving its own ordinary query response.

A ``top_k`` op pages through the best witness paths between one node
pair (shortest-first, or most-probable-first when the service runs the
Viterbi semiring) without materializing the full path set: the
response is ``{"paths": [...], "next_cursor": N, "exhausted": bool}``
and the client passes ``cursor: N`` back to continue — the service
caches the underlying lazy enumerator, so later pages resume where the
last one stopped.

With ``replicas=[(host, port), ...]`` the server is a read fan-out
front door: ``query``, ``batch`` and ``top_k`` ops are forwarded round-robin to
follower replicas (their responses relayed verbatim), every other op
runs locally — the leader owns writes.  With a follower service, a
background task tails the WAL so the replica converges without client
involvement.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import logging
import os
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import IO, Iterable

from ..errors import ReproError
from ..obs.metrics import get_registry, render_prometheus
from ..obs.trace import get_tracer, stopwatch
from .query_service import QueryService, TickReport

logger = logging.getLogger(__name__)

#: Longest accepted request line (bytes).  A frame beyond this is
#: answered with ``FrameTooLongError`` and the connection closed — the
#: stream cannot be resynchronized mid-frame.
DEFAULT_MAX_LINE_BYTES = 1 << 20

#: How often a follower server polls the WAL for new ticks (seconds).
DEFAULT_FOLLOWER_POLL_SECONDS = 0.05

#: Concurrent request executions across all connections.
DEFAULT_EXECUTOR_WORKERS = 32


# ----------------------------------------------------------------------
# Request handling (transport-independent)
# ----------------------------------------------------------------------

#: Request-id source for trace correlation; the pid prefix keeps ids
#: distinct across a leader and its replica processes.
_RID_COUNTER = itertools.count(1)

#: Sentinel: slow-query config not resolved from the environment yet.
_SLOW_UNSET = object()
_SLOW_QUERY: "tuple[float, str | None] | None | object" = _SLOW_UNSET
_SLOW_LOCK = threading.Lock()


def _next_rid() -> str:
    return f"{os.getpid():x}-{next(_RID_COUNTER):x}"


def set_slow_query_log(threshold_ms: "float | None",
                       log_path: "str | None" = None) -> None:
    """Configure the slow-query log: requests taking at least
    *threshold_ms* get their full span tree appended to *log_path*
    (JSONL; None logs through the module logger instead).  Pass
    ``threshold_ms=None`` to disable, after which the environment
    (``REPRO_SLOW_QUERY_MS`` / ``REPRO_SLOW_QUERY_LOG``) is consulted
    again on the next request."""
    global _SLOW_QUERY
    with _SLOW_LOCK:
        if threshold_ms is None:
            _SLOW_QUERY = _SLOW_UNSET
        else:
            _SLOW_QUERY = (float(threshold_ms), log_path)


def _slow_query_config() -> "tuple[float, str | None] | None":
    global _SLOW_QUERY
    config = _SLOW_QUERY
    if config is not _SLOW_UNSET:
        return config
    with _SLOW_LOCK:
        if _SLOW_QUERY is _SLOW_UNSET:
            raw = os.environ.get("REPRO_SLOW_QUERY_MS", "").strip()
            if raw:
                _SLOW_QUERY = (float(raw),
                               os.environ.get("REPRO_SLOW_QUERY_LOG")
                               or None)
            else:
                _SLOW_QUERY = None
        return _SLOW_QUERY


def _record_slow_query(log_path: "str | None", op: str, rid: str,
                       seconds: float, spans: list) -> None:
    entry = {"ts": time.time(), "op": op, "rid": rid,
             "seconds": seconds, "spans": spans}
    if log_path is None:
        logger.warning("slow query op=%s rid=%s took %.3fs (%d spans)",
                       op, rid, seconds, len(spans))
        return
    line = json.dumps(entry, sort_keys=True) + "\n"
    with _SLOW_LOCK, open(log_path, "a", encoding="utf-8") as stream:
        stream.write(line)


def handle_request(service: QueryService, request: dict,
                   include_stats: bool = False) -> dict:
    """Execute one request object against *service*.

    Never raises for request-level problems — malformed input and
    :class:`~repro.errors.ReproError` subclasses become ``ok: false``
    responses, so one bad line cannot kill a session.  With
    *include_stats* the attached stats are captured inside the
    operation's own critical section (see
    :meth:`QueryService.capture_stats`) — never from a racy read after
    the response was built.

    Every request lands in the metrics registry (count + latency per
    op); with tracing enabled it runs inside a ``server.request`` span
    carrying a request id (``_rid`` in the request, injected by a
    fan-out leader, is honoured so leader and replica spans correlate),
    and requests over the slow-query threshold get their span tree
    appended to the slow-query log."""
    op = request.get("op", "query") if isinstance(request, dict) \
        else "invalid"
    tracer = get_tracer()
    slow = _slow_query_config()
    with stopwatch() as timer:
        if not tracer.enabled:
            response = _execute_request(service, request, include_stats)
        else:
            rid = (request.get("_rid")
                   if isinstance(request, dict) else None) or _next_rid()
            if slow is not None:
                with tracer.collect() as records, \
                        tracer.span("server.request", op=op,
                                    rid=rid) as span:
                    response = _execute_request(service, request,
                                                include_stats)
                    trace_id = span.trace_id
                elapsed = timer.elapsed
                if elapsed * 1000.0 >= slow[0]:
                    _record_slow_query(
                        slow[1], op, rid, elapsed,
                        [record for record in records
                         if record["trace_id"] == trace_id],
                    )
            else:
                with tracer.span("server.request", op=op, rid=rid):
                    response = _execute_request(service, request,
                                                include_stats)
    registry = get_registry()
    registry.counter(
        "repro_requests_total", "Requests handled", ("op",)
    ).inc(op=op)
    registry.histogram(
        "repro_request_seconds", "Request latency", ("op",)
    ).observe(timer.elapsed, op=op)
    return response


def _execute_request(service: QueryService, request: dict,
                     include_stats: bool) -> dict:
    capture = (service.capture_stats() if include_stats
               and hasattr(service, "capture_stats")
               else contextlib.nullcontext(lambda: None))
    with capture as captured:
        try:
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            op = request.get("op", "query")
            result = _dispatch(service, op, request)
            response: dict = {"ok": True, "op": op, "result": result}
        except (ReproError, ValueError, KeyError, TypeError) as error:
            response = {"ok": False, "error": str(error),
                        "error_type": type(error).__name__}
    if include_stats:
        response["stats"] = _compact_stats(service, captured())
    return response


def _dispatch(service: QueryService, op: str, request: dict):
    if op == "query":
        start = request.get("start")
        if start is None:
            raise ValueError("query requires 'start'")
        graph = service.graph
        result = service.query(
            start,
            source=_coerce_node(graph, request.get("source")),
            target=_coerce_node(graph, request.get("target")),
            semantics=request.get("semantics", "relational"),
        )
        return _jsonable_result(result)
    if op == "batch":
        queries = request.get("queries")
        if not isinstance(queries, list):
            raise ValueError("batch requires a 'queries' list")
        graph = service.graph
        items: list = []
        for spec in queries:
            if isinstance(spec, dict):
                spec = dict(spec)
                spec["source"] = _coerce_node(graph, spec.get("source"))
                spec["target"] = _coerce_node(graph, spec.get("target"))
            items.append(spec)
        return [_batch_item_envelope(answer)
                for answer in service.query_batch(items)]
    if op == "top_k":
        start = request.get("start")
        if start is None:
            raise ValueError("top_k requires 'start'")
        graph = service.graph
        source = _coerce_node(graph, request.get("source"))
        target = _coerce_node(graph, request.get("target"))
        if source is None or target is None:
            raise ValueError("top_k requires 'source' and 'target'")
        max_length = request.get("max_length")
        paths, next_cursor, exhausted = service.top_k_page(
            start, source, target, int(request.get("k", 1)),
            cursor=int(request.get("cursor", 0)),
            max_length=None if max_length is None else int(max_length),
        )
        return {
            "paths": [_jsonable_result(path) for path in paths],
            "next_cursor": next_cursor,
            "exhausted": exhausted,
        }
    if op == "update":
        graph = service.graph
        ops = [
            (str(kind), _coerce_edge(graph, (source, label, target)))
            for kind, source, label, target in request.get("ops", ())
        ]
        ops += [("insert", _coerce_edge(graph, edge))
                for edge in request.get("insert", ())]
        ops += [("delete", _coerce_edge(graph, edge))
                for edge in request.get("delete", ())]
        if not ops:
            raise ValueError(
                "update requires 'ops', 'insert' and/or 'delete'"
            )
        return service.tick(ops).as_dict()
    if op == "stats":
        return service.stats
    if op == "sync":
        replay = getattr(service, "replay", None)
        if replay is None:
            raise ValueError(
                "sync requires a follower (this service does not replay "
                "a WAL)"
            )
        return replay()
    if op == "save":
        path = request.get("path")
        if not path:
            raise ValueError("save requires 'path'")
        return {"path": path, "bytes": service.save_snapshot(path)}
    if op == "metrics":
        return {"format": "prometheus", "text": render_prometheus()}
    if op == "ping":
        return "pong"
    if op == "shutdown":
        return "bye"
    raise ValueError(
        f"unknown op {op!r}; expected query/batch/top_k/update/stats/"
        "sync/save/metrics/ping/shutdown"
    )


def _batch_item_envelope(answer) -> dict:
    """Per-item response envelope for the ``batch`` op:
    :meth:`QueryService.query_batch` reports item failures in-band as
    exception instances, mirrored here as the same ``ok: false`` shape
    a whole-request error would get."""
    if isinstance(answer, Exception):
        return {"ok": False, "error": str(answer),
                "error_type": type(answer).__name__}
    return {"ok": True, "result": _jsonable_result(answer)}


def _coerce_node(graph, token):
    """Interpret a JSON node token against the graph's node objects:
    JSON cannot distinguish the node ``"0"`` from the node ``0``, so try
    the literal value first and the int/str twin second."""
    if token is None or graph.has_node(token):
        return token
    if isinstance(token, str):
        try:
            twin: object = int(token)
        except ValueError:
            return token
    elif isinstance(token, int):
        twin = str(token)
    else:
        return token
    return twin if graph.has_node(twin) else token


def _coerce_edge(graph, edge) -> tuple:
    """Apply the same node coercion to an update edge that queries get,
    so a client sending ``"2"`` for the integer node ``2`` attaches the
    edge to the existing node instead of silently creating a twin.  On
    a leader this runs *before* the WAL append, so followers replay the
    coerced edges the leader actually applied."""
    source, label, target = edge
    return (_coerce_node(graph, source), str(label),
            _coerce_node(graph, target))


def _json_node(node):
    return node if isinstance(node, (int, str, float, bool)) else str(node)


def _jsonable_result(result):
    if isinstance(result, frozenset):
        return sorted(
            ([_json_node(a), _json_node(b)] for a, b in result),
            key=lambda pair: (str(pair[0]), str(pair[1])),
        )
    if isinstance(result, tuple):  # a witness path
        return [[_json_node(i), label, _json_node(j)]
                for i, label, j in result]
    if isinstance(result, TickReport):
        return result.as_dict()
    return result


def _compact_stats(service: QueryService, stats: "dict | None") -> dict:
    """Compact the stats dict captured inside the operation's critical
    section; *stats* is None only for ops that never took the service
    lock (``ping``, protocol errors), where a fresh read cannot be
    inconsistent with any operation."""
    if stats is None:
        stats = service.stats
    compact = {
        "cache_hit_rate": stats["cache_hit_rate"],
        "cache_entries": stats["cache_entries"],
        "cache_invalidations": stats["cache_invalidations"],
        "ticks": stats["ticks"],
        "dred_passes": stats["dred_passes"],
        "frontier_runs": stats["frontier_runs"],
        "tick_last_seconds": stats["tick_last_seconds"],
        "snapshot_bytes": stats["snapshot_bytes"],
        "startup": stats["startup"],
    }
    if "replication" in stats:
        compact["replication"] = stats["replication"]
    return compact


def _microbatch_responses(service, requests: list,
                          include_stats: bool) -> list:
    """Execute window-coalesced single ``query`` requests as **one**
    ``query_batch`` call, shaping each response exactly as the
    per-request ``query`` op would — clients cannot tell whether their
    request was micro-batched."""
    capture = (service.capture_stats() if include_stats
               and hasattr(service, "capture_stats")
               else contextlib.nullcontext(lambda: None))
    graph = service.graph
    responses: list = [None] * len(requests)
    items: list = []
    slots: list[int] = []
    for position, request in enumerate(requests):
        start = request.get("start")
        if start is None:
            responses[position] = {"ok": False,
                                   "error": "query requires 'start'",
                                   "error_type": "ValueError"}
            continue
        items.append({
            "start": start,
            "source": _coerce_node(graph, request.get("source")),
            "target": _coerce_node(graph, request.get("target")),
            "semantics": request.get("semantics", "relational"),
        })
        slots.append(position)
    with stopwatch() as timer, \
            get_tracer().span("server.microbatch",
                              requests=len(requests), coalesced=len(items)):
        with capture as captured:
            answers = service.query_batch(items) if items else []
    registry = get_registry()
    # Micro-batched queries bypass handle_request, so account for them
    # here — repro_requests_total stays the one true request count.
    registry.counter(
        "repro_requests_total", "Requests handled", ("op",)
    ).inc(len(requests), op="query")
    registry.histogram(
        "repro_request_seconds", "Request latency", ("op",)
    ).observe(timer.elapsed, op="query")
    for position, answer in zip(slots, answers):
        if isinstance(answer, Exception):
            responses[position] = {"ok": False, "error": str(answer),
                                   "error_type": type(answer).__name__}
        else:
            responses[position] = {"ok": True, "op": "query",
                                   "result": _jsonable_result(answer)}
    if include_stats:
        stats = _compact_stats(service, captured())
        for response in responses:
            response["stats"] = stats
    return responses


# ----------------------------------------------------------------------
# Shared protocol steps
# ----------------------------------------------------------------------

def _handle_line(service: QueryService, line: str,
                 include_stats: bool) -> "dict | None":
    """One JSONL protocol step, shared by the stdio and TCP transports:
    blank lines are skipped (None), bad JSON becomes an error response,
    everything else goes through :func:`handle_request`."""
    line = line.strip()
    if not line:
        return None
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        return {"ok": False, "error": f"bad JSON: {error}",
                "error_type": "JSONDecodeError"}
    return handle_request(service, request, include_stats)


def _is_shutdown(response: dict) -> bool:
    return bool(response.get("ok")) and response.get("op") == "shutdown"


def _encode(response: dict) -> bytes:
    return (json.dumps(response) + "\n").encode("utf-8")


def serve_stream(service: QueryService, in_stream: IO[str],
                 out_stream: IO[str], include_stats: bool = False) -> int:
    """The stdio loop: read JSONL requests until EOF or a ``shutdown``
    op; returns the number of requests served.  On shutdown, a service
    with a ``flush`` method (a WAL-writing leader) is flushed — stdio
    and TCP shutdown semantics stay aligned."""
    served = 0
    for raw in in_stream:
        response = _handle_line(service, raw, include_stats)
        if response is None:
            continue
        out_stream.write(json.dumps(response) + "\n")
        out_stream.flush()
        served += 1
        if _is_shutdown(response):
            break
    flush = getattr(service, "flush", None)
    if flush is not None:
        flush()
    return served


# ----------------------------------------------------------------------
# Read fan-out (leader → follower replicas)
# ----------------------------------------------------------------------

class _ReplicaPool:
    """Round-robin forwarding of query lines to follower replicas.

    One persistent connection per replica, serialized by a per-replica
    lock (concurrent queries parallelize *across* replicas).  A dead
    replica is skipped — its connection is dropped and the next replica
    tried; when every replica fails the caller answers locally."""

    def __init__(self, addresses: Iterable[tuple[str, int]]):
        self.addresses = list(addresses)
        self._next = 0
        self._connections: dict = {}
        self._locks = {address: asyncio.Lock()
                       for address in self.addresses}

    async def forward(self, line: str) -> "bytes | None":
        """Send *line* to the next replica; returns its raw response
        line, or None when no replica answered."""
        for _ in range(len(self.addresses)):
            address = self.addresses[self._next % len(self.addresses)]
            self._next += 1
            try:
                async with self._locks[address]:
                    reader, writer = await self._connect(address)
                    writer.write(line.encode("utf-8") + b"\n")
                    await writer.drain()
                    raw = await reader.readline()
                if raw:
                    return raw
                await self._drop(address)
            except OSError as error:
                logger.warning("replica %s:%s unreachable: %s",
                               address[0], address[1], error)
                await self._drop(address)
        return None

    async def _connect(self, address):
        connection = self._connections.get(address)
        if connection is None:
            connection = await asyncio.open_connection(*address)
            self._connections[address] = connection
        return connection

    async def _drop(self, address) -> None:
        connection = self._connections.pop(address, None)
        if connection is not None:
            connection[1].close()

    async def close(self) -> None:
        for address in list(self._connections):
            await self._drop(address)


# ----------------------------------------------------------------------
# Asyncio TCP transport
# ----------------------------------------------------------------------

class AsyncJSONLServer:
    """Asyncio JSONL server over one shared service.

    One task per connection; request execution happens on a bounded
    thread pool (the service's reader/writer lock provides the
    concurrency semantics).  The server stops as a whole on a
    ``shutdown`` op or :meth:`request_shutdown`: the listener closes,
    every open connection is closed (a blocked client reads EOF), a
    follower's poll task stops, and a leader's WAL is flushed.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0,
                 include_stats: bool = False,
                 replicas: Iterable[tuple[str, int]] = (),
                 max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
                 follower_poll_seconds:
                     "float | None" = DEFAULT_FOLLOWER_POLL_SECONDS,
                 executor_workers: int = DEFAULT_EXECUTOR_WORKERS,
                 batch_window_ms: "float | None" = None):
        self.service = service
        self.host = host
        self.port = port
        self.include_stats = include_stats
        self.max_line_bytes = max_line_bytes
        self.follower_poll_seconds = follower_poll_seconds
        self.executor_workers = executor_workers
        if batch_window_ms is None:
            batch_window_ms = float(
                os.environ.get("REPRO_BATCH_WINDOW_MS", "0") or 0)
        #: Micro-batching window (milliseconds; 0 disables): single
        #: ``query`` requests arriving within the window are coalesced
        #: into one ``query_batch`` call.
        self.batch_window_ms = float(batch_window_ms)
        self._batch_window_s = self.batch_window_ms / 1000.0
        self._pending: "list[tuple[dict, asyncio.Future]]" = []
        self._flush_handle: "asyncio.TimerHandle | None" = None
        self.address: "tuple[str, int] | None" = None
        self.connections_served = 0
        self._replica_addresses = list(replicas)
        self._replica_pool: "_ReplicaPool | None" = None
        self._server: "asyncio.base_events.Server | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._executor: "ThreadPoolExecutor | None" = None
        self._shutdown = asyncio.Event()
        self._writers: set = set()
        self._tasks: set = set()
        self._poll_task: "asyncio.Task | None" = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; :attr:`address` is the bound
        (host, port) — with ``port=0``, the ephemeral port chosen."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_workers,
            thread_name_prefix="jsonl-serve",
        )
        if self._replica_addresses:
            self._replica_pool = _ReplicaPool(self._replica_addresses)
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            limit=self.max_line_bytes,
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        if self.follower_poll_seconds is not None \
                and hasattr(self.service, "replay"):
            self._poll_task = self._loop.create_task(
                self._poll_replication()
            )

    async def wait_closed(self) -> None:
        """Block until a shutdown is requested, then tear everything
        down: listener, open connections, poll task, executor, and the
        leader's WAL buffer."""
        await self._shutdown.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._poll_task is not None:
            self._poll_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._poll_task
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._tasks:
            # Unblock connection loops parked in readline() so they run
            # their cleanup before the loop goes away.
            for task in list(self._tasks):
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._replica_pool is not None:
            await self._replica_pool.close()
        flush = getattr(self.service, "flush", None)
        if flush is not None:
            await self._loop.run_in_executor(self._executor, flush)
        self._executor.shutdown(wait=False)

    async def serve(self) -> None:
        await self.start()
        await self.wait_closed()

    def request_shutdown(self) -> None:
        """Stop the whole server; safe to call from any thread (a no-op
        once the loop is gone — shutdown already happened)."""
        if self._loop is None:
            return
        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self._shutdown.set)

    # -- connection handling -------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        self._writers.add(writer)
        self.connections_served += 1
        peer = writer.get_extra_info("peername")
        try:
            while not self._shutdown.is_set():
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized frame: the line exceeded the stream
                    # limit, so the remainder cannot be re-framed —
                    # answer with an error and drop the connection.
                    writer.write(_encode({
                        "ok": False,
                        "error": "request line exceeds "
                                 f"{self.max_line_bytes} bytes",
                        "error_type": "FrameTooLongError",
                    }))
                    await writer.drain()
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace")
                payload = await self._respond(line)
                if payload is None:
                    continue
                writer.write(payload)
                await writer.drain()
                if self._shutdown.is_set():
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError,
                OSError) as error:
            # A client that vanished mid-request/response is routine:
            # log once, never let it near the accept loop.
            logger.info("connection %s dropped: %s", peer, error)
        except asyncio.CancelledError:
            pass  # server shutdown cancelled a parked readline
        finally:
            self._tasks.discard(task)
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _respond(self, line: str) -> "bytes | None":
        stripped = line.strip()
        if not stripped:
            return None
        try:
            request = json.loads(stripped)
        except json.JSONDecodeError as error:
            return _encode({"ok": False, "error": f"bad JSON: {error}",
                            "error_type": "JSONDecodeError"})
        if self._replica_pool is not None and isinstance(request, dict) \
                and request.get("op", "query") in ("query", "batch",
                                                   "top_k"):
            tracer = get_tracer()
            if tracer.enabled:
                # Stamp a request id into the forwarded line so the
                # replica's server.request span carries the same rid as
                # the leader's server.forward span (handle_request
                # honours "_rid"; unknown keys are ignored by dispatch).
                rid = request.get("_rid") or _next_rid()
                with tracer.span("server.forward",
                                 op=request.get("op", "query"), rid=rid):
                    forwarded = await self._replica_pool.forward(
                        json.dumps({**request, "_rid": rid}))
            else:
                forwarded = await self._replica_pool.forward(stripped)
            if forwarded is not None:
                get_registry().counter(
                    "repro_requests_forwarded_total",
                    "Read requests answered by a follower replica",
                    ("op",),
                ).inc(op=request.get("op", "query"))
                return forwarded
            # Every replica down: serve the read locally.
        if self._batch_window_s > 0 and isinstance(request, dict) \
                and request.get("op", "query") == "query":
            response = await self._enqueue_microbatch(request)
        else:
            response = await self._loop.run_in_executor(
                self._executor, handle_request, self.service, request,
                self.include_stats,
            )
        if _is_shutdown(response):
            self._shutdown.set()
        return _encode(response)

    # -- micro-batching ------------------------------------------------
    async def _enqueue_microbatch(self, request: dict) -> dict:
        """Park one ``query`` request until the window flushes; the
        first request of a window arms the flush timer.  Per-connection
        FIFO is preserved because :meth:`_on_connection` awaits each
        response before reading the next line."""
        future: asyncio.Future = self._loop.create_future()
        self._pending.append((request, future))
        if self._flush_handle is None:
            self._flush_handle = self._loop.call_later(
                self._batch_window_s, self._arm_flush)
        return await future

    def _arm_flush(self) -> None:
        self._flush_handle = None
        task = self._loop.create_task(self._flush_microbatch())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _flush_microbatch(self) -> None:
        pending, self._pending = self._pending, []
        if not pending:
            return
        requests = [request for request, _future in pending]
        try:
            responses = await self._loop.run_in_executor(
                self._executor, _microbatch_responses, self.service,
                requests, self.include_stats,
            )
        except Exception as error:  # pragma: no cover - defensive
            for _request, future in pending:
                if not future.done():
                    future.set_exception(error)
            return
        for (_request, future), response in zip(pending, responses):
            if not future.done():
                future.set_result(response)

    async def _poll_replication(self) -> None:
        """Follower mode: tail the WAL so the replica converges without
        clients issuing explicit ``sync`` ops."""
        while not self._shutdown.is_set():
            try:
                await self._loop.run_in_executor(self._executor,
                                                 self.service.replay)
            except Exception as error:
                logger.warning("WAL replay failed: %s", error)
            await asyncio.sleep(self.follower_poll_seconds)


def serve_tcp(service, host: str = "127.0.0.1", port: int = 0,
              include_stats: bool = False,
              ready_stream: "IO[str] | None" = None,
              replicas: Iterable[tuple[str, int]] = (),
              follower_poll_seconds:
                  "float | None" = DEFAULT_FOLLOWER_POLL_SECONDS,
              batch_window_ms: "float | None" = None) -> None:
    """Run the asyncio TCP transport until shutdown.  ``port=0`` binds
    an ephemeral port; the actual address is announced on *ready_stream*
    (default stderr) as ``listening on HOST:PORT`` before serving."""

    async def main() -> None:
        server = AsyncJSONLServer(
            service, host=host, port=port, include_stats=include_stats,
            replicas=replicas,
            follower_poll_seconds=follower_poll_seconds,
            batch_window_ms=batch_window_ms,
        )
        await server.start()
        bound_host, bound_port = server.address
        stream = ready_stream if ready_stream is not None else sys.stderr
        stream.write(f"listening on {bound_host}:{bound_port}\n")
        stream.flush()
        await server.wait_closed()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass


class ServerThread:
    """Run an :class:`AsyncJSONLServer` on a background thread — the
    harness tests and the serving benchmark use this to stand up
    leaders and replicas in one process.

    Context-manager protocol: entering starts the loop thread and
    blocks until the server is bound (``.address`` is then set);
    exiting requests shutdown and joins the thread."""

    def __init__(self, service, **kwargs):
        self.service = service
        self.kwargs = kwargs
        self.server: "AsyncJSONLServer | None" = None
        self.address: "tuple[str, int] | None" = None
        self._thread: "threading.Thread | None" = None
        self._ready = threading.Event()
        self._error: "BaseException | None" = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if self.address is None:
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        async def main() -> None:
            server = AsyncJSONLServer(self.service, **self.kwargs)
            try:
                await server.start()
            except BaseException as error:
                self._error = error
                self._ready.set()
                raise
            self.server = server
            self.address = server.address
            self._ready.set()
            await server.wait_closed()

        try:
            asyncio.run(main())
        except BaseException as error:  # surfaced via __enter__/join
            if self._error is None:
                self._error = error
            self._ready.set()

    def stop(self) -> None:
        if self.server is not None:
            self.server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __exit__(self, *exc_info) -> None:
        self.stop()
