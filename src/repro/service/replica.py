"""Replicated serving roles: a WAL-writing leader and replaying followers.

The single-process :class:`~repro.service.query_service.QueryService`
already has the two properties a replicated tier needs: update ticks
are **deterministic** (last-op-per-edge coalescing, one DRed pass + one
frontier run) and snapshots are **canonical** (sorted encodings — two
processes holding the same logical state write the same bytes).  So
replication is pure serving-layer plumbing:

* :class:`ReplicatedService` — the **leader**.  Owns writes: every tick
  is appended to a :class:`~repro.service.wal.TickLog` *before* it is
  applied (write-ahead), so the durable history is never behind the
  served state.  Snapshots are stamped with the WAL sequence they
  include and anchored into the log, enabling snapshot-anchored
  truncation.  Crash recovery = :meth:`ReplicatedService.recover`:
  reload the last snapshot, replay the log past its anchor.
* :class:`FollowerService` — a **read replica**.  Loads the leader's
  snapshot, tails the WAL from the snapshot's ``wal_seq``, and replays
  each tick through the same ``tick()`` code.  Writes are refused
  (:class:`~repro.errors.ReadOnlyReplicaError`) — accepting one would
  fork the replica from the replicated history.  Reads are served at
  the **replay horizon**: whatever prefix of the log the follower has
  applied (eventual consistency; :meth:`FollowerService.replay` — the
  protocol's ``sync`` op — fast-forwards on demand).

Both wrap a :class:`QueryService` and duck-type its serving surface
(``graph``/``query``/``tick``/``stats``/``save_snapshot``/
``capture_stats``), so :func:`repro.service.server.handle_request` and
both transports work unchanged against either role.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterable

from ..errors import ReadOnlyReplicaError, WALError
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .query_service import QueryService, TickReport
from .wal import TickLog, TickLogReader, decode_ops, encode_ops

__all__ = ["ReplicatedService", "FollowerService", "open_role"]


class _ServiceProxy:
    """Shared delegation: the wrapped service's read surface."""

    role = "single"

    def __init__(self, service: QueryService):
        self.service = service

    @property
    def graph(self):
        return self.service.graph

    @property
    def single_path(self) -> bool:
        return self.service.single_path

    def query(self, start, source=None, target=None,
              semantics: str = "relational"):
        return self.service.query(start, source=source, target=target,
                                  semantics=semantics)

    def query_batch(self, queries):
        return self.service.query_batch(queries)

    def top_k(self, start, source, target, k, max_length=None):
        return self.service.top_k(start, source, target, k,
                                  max_length=max_length)

    def top_k_page(self, start, source, target, k, cursor=0,
                   max_length=None):
        return self.service.top_k_page(start, source, target, k,
                                       cursor=cursor, max_length=max_length)

    @contextlib.contextmanager
    def capture_stats(self):
        """Delegate to the wrapped service's in-critical-section stats
        capture, stamping the replication block onto the snapshot."""
        with self.service.capture_stats() as captured:
            def stamped():
                payload = captured()
                if payload is not None:
                    payload["replication"] = self._replication_stats()
                return payload

            yield stamped

    def _replication_stats(self) -> dict:
        raise NotImplementedError

    @property
    def stats(self) -> dict:
        payload = self.service.stats
        payload["replication"] = self._replication_stats()
        return payload


class ReplicatedService(_ServiceProxy):
    """The leader: a :class:`QueryService` whose ticks are written ahead
    to a :class:`~repro.service.wal.TickLog`.

    *applied_seq* is the log sequence already reflected in *service*'s
    state (0 for a fresh log; :meth:`recover` computes it).  Writes are
    serialized by an internal mutex so the (append, apply) pair is
    atomic with respect to other writers and to :meth:`save_snapshot`'s
    (snapshot, anchor) pair — queries keep running under the service's
    reader lock throughout.
    """

    role = "leader"

    def __init__(self, service: QueryService, log: TickLog,
                 applied_seq: "int | None" = None):
        super().__init__(service)
        self.log = log
        self._applied_seq = log.last_seq if applied_seq is None \
            else applied_seq
        self._write_mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def recover(cls, snapshot_path: str, wal_path: str,
                fsync: str = "batch", **service_kwargs
                ) -> "ReplicatedService":
        """Restart a leader: load the snapshot, replay every logged tick
        past the snapshot's ``wal_seq``, and resume appending.

        This also covers the write-ahead crash window — a tick that was
        logged but not yet applied when the process died is simply
        replayed like any other."""
        service = QueryService.from_snapshot(snapshot_path,
                                             **service_kwargs)
        log = TickLog(wal_path, fsync=fsync)
        applied = service.snapshot_meta.get("wal_seq", 0)
        for seq, ops in log.records(after_seq=applied):
            service.tick(decode_ops(ops))
            applied = seq
        return cls(service, log, applied_seq=applied)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    @property
    def applied_seq(self) -> int:
        """The log sequence the served state includes."""
        return self._applied_seq

    def tick(self, ops: Iterable[tuple]) -> TickReport:
        """Write-ahead, then apply: the tick is durable per the log's
        fsync policy before any follower (or this leader's own state)
        can observe it."""
        ops = list(ops)
        # encode_ops validates kinds/shapes; a malformed op must fail
        # *before* it is written into the replicated history, because
        # every follower will replay whatever the log accepted.
        encode_ops(ops)
        with self._write_mutex:
            seq = self.log.append(ops)
            report = self.service.tick(ops)
            self._applied_seq = seq
        return report

    def update(self, inserts: Iterable = (),
               deletes: Iterable = ()) -> TickReport:
        ops = [("insert", edge) for edge in inserts]
        ops += [("delete", edge) for edge in deletes]
        return self.tick(ops)

    # ------------------------------------------------------------------
    # Snapshots / lifecycle
    # ------------------------------------------------------------------
    def save_snapshot(self, path: str, truncate: bool = False) -> int:
        """Snapshot the current state, stamped with the WAL sequence it
        includes, and anchor the log at that sequence.  With *truncate*
        the log drops the ticks the snapshot made redundant."""
        with self._write_mutex:
            seq = self._applied_seq
            size = self.service.save_snapshot(path,
                                              extra={"wal_seq": seq})
            if truncate:
                self.log.truncate(snapshot=path, seq=seq)
            else:
                self.log.anchor(path, seq=seq)
        return size

    def flush(self) -> None:
        """Force the log durable (the server calls this on shutdown)."""
        self.log.flush()

    def close(self) -> None:
        self.log.close()

    def _replication_stats(self) -> dict:
        return {
            "role": self.role,
            "wal_path": self.log.path,
            "wal_seq": self._applied_seq,
            "wal_last_seq": self.log.last_seq,
            "wal_anchor_seq": self.log.anchor_seq,
            "wal_fsync": self.log.fsync,
        }


class FollowerService(_ServiceProxy):
    """A read replica: snapshot + WAL tail + deterministic replay.

    Replay is guarded by a mutex (the server's poll task and an explicit
    ``sync`` op may race); each replayed tick takes the service's writer
    lock exactly like a leader tick, so queries interleave safely and
    always see a completed tick's fixpoint.
    """

    role = "follower"

    def __init__(self, service: QueryService, wal_path: str,
                 start_seq: "int | None" = None):
        super().__init__(service)
        if start_seq is None:
            start_seq = service.snapshot_meta.get("wal_seq", 0)
        self._reader = TickLogReader(wal_path, after_seq=start_seq)
        self._replay_mutex = threading.Lock()
        self._ticks_replayed = 0

    @classmethod
    def from_snapshot(cls, snapshot_path: str, wal_path: str,
                      **service_kwargs) -> "FollowerService":
        """Load the leader's snapshot and position the WAL tail at its
        ``wal_seq``; call :meth:`replay` (or let the server's poll task)
        to catch up."""
        service = QueryService.from_snapshot(snapshot_path,
                                             **service_kwargs)
        return cls(service, wal_path)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    @property
    def replay_seq(self) -> int:
        """The replay horizon: the highest log sequence applied."""
        return self._reader.last_seq

    def replay(self) -> dict:
        """Apply every tick the log has grown since the last replay;
        returns ``{"applied_ticks", "seq"}`` — the protocol's ``sync``
        response."""
        with self._replay_mutex:
            applied = 0
            with get_tracer().span("replica.replay") as span:
                pending = self._reader.poll()
                # Observed backlog before applying: how many ticks this
                # replica was behind the log at poll time.
                registry = get_registry()
                registry.gauge(
                    "repro_replica_replay_lag_ticks",
                    "Ticks behind the WAL at the last replay poll"
                ).set(len(pending))
                for seq, ops in pending:
                    self.service.tick(decode_ops(ops))
                    applied += 1
                span.set("applied_ticks", applied)
            self._ticks_replayed += applied
            registry.counter(
                "repro_replica_ticks_replayed_total",
                "WAL ticks replayed by this follower"
            ).inc(applied)
            # The backlog is drained: replay lag returns to zero.
            registry.gauge(
                "repro_replica_replay_lag_ticks",
                "Ticks behind the WAL at the last replay poll"
            ).set(0)
            return {"applied_ticks": applied, "seq": self._reader.last_seq}

    # ------------------------------------------------------------------
    # Writes are refused
    # ------------------------------------------------------------------
    def tick(self, ops: Iterable[tuple]) -> TickReport:
        raise ReadOnlyReplicaError(
            "this replica is a read-only follower; send updates to the "
            "leader (they arrive here through the WAL)"
        )

    def update(self, inserts: Iterable = (), deletes: Iterable = ()):
        return self.tick(())

    def save_snapshot(self, path: str) -> int:
        """Snapshot the replica at its replay horizon, stamped with that
        horizon's sequence — byte-identical to the leader's snapshot of
        the same sequence (the convergence proof the tests assert)."""
        with self._replay_mutex:
            return self.service.save_snapshot(
                path, extra={"wal_seq": self._reader.last_seq}
            )

    def close(self) -> None:
        pass

    def _replication_stats(self) -> dict:
        return {
            "role": self.role,
            "wal_path": self._reader.path,
            "wal_seq": self._reader.last_seq,
            "ticks_replayed": self._ticks_replayed,
        }


def open_role(role: str, service_or_none, *, snapshot: "str | None" = None,
              wal: "str | None" = None, fsync: str = "batch",
              **service_kwargs):
    """CLI glue: build the service object for ``serve --role``.

    * ``single`` — *service_or_none* passed through unchanged;
    * ``leader`` — wrap it in a :class:`ReplicatedService` over *wal*
      (replaying any logged ticks past the state's ``wal_seq`` first,
      so a restart with the same flags recovers);
    * ``follower`` — ignore *service_or_none* and build a
      :class:`FollowerService` from *snapshot* + *wal*, caught up to
      the current end of the log.
    """
    if role == "single":
        return service_or_none
    if wal is None:
        raise WALError(f"role {role!r} requires --wal PATH")
    if role == "leader":
        service = service_or_none
        log = TickLog(wal, fsync=fsync)
        applied = service.snapshot_meta.get("wal_seq", 0)
        for seq, ops in log.records(after_seq=applied):
            service.tick(decode_ops(ops))
            applied = seq
        return ReplicatedService(service, log, applied_seq=applied)
    if role == "follower":
        if snapshot is None:
            raise WALError("role 'follower' requires --snapshot (the "
                           "leader's snapshot anchors the replay)")
        follower = FollowerService.from_snapshot(snapshot, wal,
                                                 **service_kwargs)
        follower.replay()
        return follower
    raise WALError(f"unknown role {role!r}; expected "
                   "'single', 'leader' or 'follower'")
